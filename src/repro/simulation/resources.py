"""Serialised resources (ports and links) used by the broadcast simulator.

Under the one-port model, a processor's output port, its input port and
every physical link are resources that can serve at most one transfer at a
time.  :class:`SequentialResource` tracks the occupation of one such
resource and records its reservations so that the trace validator can prove
no two transfers ever overlapped on it — the key invariant the paper's
models impose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SimulationError

__all__ = ["Reservation", "SequentialResource"]


@dataclass(frozen=True)
class Reservation:
    """One occupation interval ``[start, end)`` of a resource."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start


@dataclass
class SequentialResource:
    """A resource serving at most one occupation interval at a time."""

    name: str
    next_free: float = 0.0
    busy_time: float = 0.0
    reservations: list[Reservation] = field(default_factory=list)
    record: bool = True

    def earliest_start(self, ready: float) -> float:
        """Earliest time a new occupation may start, given data readiness."""
        return max(ready, self.next_free)

    def reserve(self, start: float, duration: float) -> float:
        """Occupy the resource during ``[start, start + duration)``.

        Returns the end of the occupation.  Raises
        :class:`~repro.exceptions.SimulationError` if the interval overlaps
        the previous reservation (which would indicate a scheduling bug).
        """
        if duration < 0:
            raise SimulationError(f"negative occupation duration {duration} on {self.name}")
        if start < self.next_free - 1e-9:
            raise SimulationError(
                f"resource {self.name!r} double-booked: new occupation starts at "
                f"{start} but the resource is busy until {self.next_free}"
            )
        end = start + duration
        self.next_free = max(self.next_free, end)
        self.busy_time += duration
        if self.record and duration > 0:
            self.reservations.append(Reservation(start, end))
        return end

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` during which the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def validate_no_overlap(self) -> None:
        """Check recorded reservations are pairwise disjoint (sanity check)."""
        intervals = sorted(self.reservations, key=lambda r: r.start)
        for previous, current in zip(intervals, intervals[1:]):
            if current.start < previous.end - 1e-9:
                raise SimulationError(
                    f"resource {self.name!r} has overlapping reservations "
                    f"{previous} and {current}"
                )
