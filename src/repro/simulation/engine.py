"""Minimal discrete-event simulation engine.

The pipelined-broadcast simulator only needs a tiny core: a clock, a
priority queue of timestamped callbacks, and deterministic tie-breaking
(events scheduled at the same instant fire in scheduling order).  Keeping
the engine generic makes it reusable for other collective-communication
simulations and keeps the broadcast-specific logic in
:mod:`repro.simulation.broadcast`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..exceptions import SimulationError

__all__ = ["SimulationEngine"]

Callback = Callable[[], None]


class SimulationEngine:
    """Event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events not yet processed."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    # ------------------------------------------------------------------ #
    def schedule_at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), callback))

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in chronological order.

        Parameters
        ----------
        until:
            Optional time horizon; events scheduled strictly after it stay
            in the queue.
        max_events:
            Optional safety valve against runaway simulations.

        Returns the simulation time after the last processed event.
        """
        processed_here = 0
        while self._queue:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            if time < self._now - 1e-12:
                raise SimulationError("event queue went back in time (engine bug)")
            self._now = max(self._now, time)
            callback()
            self._processed += 1
            processed_here += 1
            if max_events is not None and processed_here >= max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events}; the schedule is "
                    "probably not making progress"
                )
        return self._now
