"""Discrete-event simulation of a pipelined broadcast along a tree.

The closed-form throughput of :mod:`repro.analysis.throughput` rests on the
steady-state argument of the paper; this simulator provides the ground
truth: it executes an explicit schedule of every slice transfer, respecting
the resource constraints of the chosen port model (serialised output port,
serialised input port, serialised link, per-send overheads), and measures
the throughput actually achieved.  Tests and the ``simulation_validation``
example check that the measured steady-state rate matches the analytical
prediction for both port models, including routed (binomial) trees.

Scheduling policy
-----------------
Each node serves its transfer obligations *in order*: slices in increasing
index, and for each slice its obligations in a fixed deterministic order
(the tree's child order).  This is the canonical schedule assumed by
:func:`repro.analysis.makespan.pipelined_makespan`.  A ``greedy`` policy is
also available: the node starts the first *ready* obligation (smallest slice
index), which can help routed trees where different obligations depend on
different arrivals.

Fast path
---------
For the in-order policy on *direct* trees with the canonical port models
and tracing disabled, every resource serves its obligations in a
predetermined order, so the schedule needs no event heap — it is evaluated
directly by :mod:`repro.kernels.simulation` (vectorized scans under the
one-port model, a lean scalar recurrence mirroring the engine's arithmetic
under the multi-port model).  The event engine remains the implementation
for the greedy policy, routed trees, tracing and custom port models, and
the test suite cross-checks the two paths for equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal, Mapping

from ..core.tree import BroadcastTree
from ..exceptions import SimulationError
from ..models.port_models import PortModel, get_port_model
from ..models.timing import transfer_timing
from .engine import SimulationEngine
from .resources import SequentialResource
from .trace import SimulationTrace, TransferRecord

__all__ = [
    "PipelinedBroadcastSimulator",
    "SimulationResult",
    "simulate_broadcast",
    "inorder_result_from_run",
    "measure_steady_rate",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]
Policy = Literal["in-order", "greedy"]


@dataclass(frozen=True)
class _Obligation:
    """One physical hop a node must perform for every slice."""

    sender: NodeName
    receiver: NodeName
    logical_edge: Edge
    hop_index: int
    is_last_hop: bool


@dataclass
class SimulationResult:
    """Outcome of one simulated pipelined broadcast.

    Attributes
    ----------
    makespan:
        Time at which the last slice reached the last node.
    num_slices:
        Number of slices broadcast.
    arrival_times:
        For every node, the time each slice arrived (source: all zeros).
    measured_throughput:
        Throughput measured over the trailing half of the slices (steady
        state), directly comparable to the analytical prediction.
    analytical_throughput:
        The closed-form steady-state throughput of the same tree/model.
    trace:
        Full transfer trace (empty when tracing was disabled).
    resource_utilization:
        Busy fraction of each port/link over the makespan.
    """

    makespan: float
    num_slices: int
    arrival_times: Mapping[NodeName, list[float]]
    measured_throughput: float
    analytical_throughput: float
    trace: SimulationTrace = field(default_factory=SimulationTrace)
    resource_utilization: Mapping[str, float] = field(default_factory=dict)

    @property
    def effective_throughput(self) -> float:
        """Throughput including fill and drain phases."""
        if self.makespan <= 0:
            return float("inf")
        return self.num_slices / self.makespan

    def relative_error(self) -> float:
        """Relative gap between measured and analytical steady-state rates."""
        if self.analytical_throughput == 0:
            return 0.0
        return abs(self.measured_throughput - self.analytical_throughput) / self.analytical_throughput


class PipelinedBroadcastSimulator:
    """Simulate the pipelined broadcast of ``num_slices`` slices along a tree.

    Parameters
    ----------
    tree:
        The broadcast tree (possibly routed) to simulate.
    num_slices:
        Number of equal-size slices to broadcast; a few dozen is enough for
        the measured rate to converge to the steady state.
    model:
        Port model (instance, name or ``None`` for one-port).
    size:
        Slice size; defaults to the platform slice size.
    policy:
        ``"in-order"`` (canonical round-robin schedule, default) or
        ``"greedy"`` (start the first ready obligation).
    record_trace:
        Keep the full transfer trace (needed for validation / Gantt output;
        costs memory proportional to ``num_slices * edges``).
    """

    def __init__(
        self,
        tree: BroadcastTree,
        num_slices: int,
        *,
        model: PortModel | str | None = None,
        size: float | None = None,
        policy: Policy = "in-order",
        record_trace: bool = True,
    ) -> None:
        if num_slices < 1:
            raise SimulationError(f"num_slices must be >= 1, got {num_slices}")
        if policy not in ("in-order", "greedy"):
            raise SimulationError(f"unknown policy {policy!r}")
        self.tree = tree
        self.platform = tree.platform
        self.num_slices = num_slices
        self.model = get_port_model(model)
        self.size = size
        self.policy: Policy = policy
        self.record_trace = record_trace

        self.engine = SimulationEngine()
        self.trace = SimulationTrace()

        # Resources.
        self._send_port: dict[NodeName, SequentialResource] = {}
        self._recv_port: dict[NodeName, SequentialResource] = {}
        self._link: dict[Edge, SequentialResource] = {}

        # Data availability.
        self._arrival: dict[NodeName, dict[int, float]] = {tree.source: {}}
        self._hop_done: dict[tuple[Edge, int, int], float] = {}

        # Per-node work lists and progress pointers (built lazily by
        # run(): the event-free fast path never needs them).
        self._obligations: dict[NodeName, list[_Obligation]] = {}
        self._pending: dict[NodeName, list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _build_obligations(self) -> None:
        obligations: dict[NodeName, list[_Obligation]] = {
            node: [] for node in self.platform.nodes
        }
        for parent in self.tree.bfs_order():
            for child in self.tree.children(parent):
                route = self.tree.route(parent, child)
                for hop_index, (a, b) in enumerate(route):
                    obligations[a].append(
                        _Obligation(
                            sender=a,
                            receiver=b,
                            logical_edge=(parent, child),
                            hop_index=hop_index,
                            is_last_hop=hop_index == len(route) - 1,
                        )
                    )
        self._obligations = obligations
        # Work items in canonical order: slice-major, then obligation order.
        self._pending = {
            node: [
                (slice_index, ob_index)
                for slice_index in range(self.num_slices)
                for ob_index in range(len(obligations[node]))
            ]
            for node in self.platform.nodes
        }

    def _build_resources(self) -> None:
        record = self.record_trace
        for node in self.platform.nodes:
            self._send_port[node] = SequentialResource(f"send-port:{node}", record=record)
            self._recv_port[node] = SequentialResource(f"recv-port:{node}", record=record)
        for edge, count in self.tree.physical_edge_multiplicities().items():
            if count > 0:
                self._link[edge] = SequentialResource(f"link:{edge}", record=record)

    # ------------------------------------------------------------------ #
    # Data readiness
    # ------------------------------------------------------------------ #
    def _ready_time(self, obligation: _Obligation, slice_index: int) -> float | None:
        """When the data of ``slice_index`` is available for this hop.

        ``None`` means "not yet known" (the upstream transfer has not
        completed in simulated time).
        """
        if obligation.hop_index == 0:
            if obligation.sender == self.tree.source:
                return 0.0
            node_arrivals = self._arrival.get(obligation.sender, {})
            return node_arrivals.get(slice_index)
        return self._hop_done.get(
            (obligation.logical_edge, obligation.hop_index - 1, slice_index)
        )

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _try_send(self, node: NodeName) -> None:
        pending = self._pending[node]
        if not pending:
            return
        obligations = self._obligations[node]

        # Pick the next work item according to the policy.
        position = 0
        if self.policy == "in-order":
            slice_index, ob_index = pending[0]
            ready = self._ready_time(obligations[ob_index], slice_index)
            if ready is None:
                return
        else:  # greedy
            ready = None
            for candidate_position, (slice_index, ob_index) in enumerate(pending):
                candidate_ready = self._ready_time(obligations[ob_index], slice_index)
                if candidate_ready is not None:
                    position = candidate_position
                    ready = candidate_ready
                    break
            if ready is None:
                return
            slice_index, ob_index = pending[position]

        obligation = obligations[ob_index]
        timing = transfer_timing(
            self.model, self.platform, obligation.sender, obligation.receiver, self.size
        )
        send_port = self._send_port[obligation.sender]
        recv_port = self._recv_port[obligation.receiver]
        link = self._link[(obligation.sender, obligation.receiver)]

        start = max(self.engine.now, ready, send_port.next_free, link.next_free)
        if timing.receiver_busy > 0:
            # The receive occupation sits at the end of the transfer; delay
            # the start until the receiver's port can accommodate it.
            earliest_recv_start = recv_port.next_free
            start = max(start, earliest_recv_start - timing.receiver_busy_start_offset)

        if start < self.engine.now - 1e-9:
            raise SimulationError("computed a transfer start in the past (simulator bug)")

        send_port.reserve(start, timing.sender_busy)
        link.reserve(start, timing.link_busy)
        if timing.receiver_busy > 0:
            recv_port.reserve(start + timing.receiver_busy_start_offset, timing.receiver_busy)

        del pending[position]
        completion = start + timing.link_busy

        if self.record_trace:
            self.trace.add(
                TransferRecord(
                    sender=obligation.sender,
                    receiver=obligation.receiver,
                    slice_index=slice_index,
                    logical_edge=obligation.logical_edge,
                    start=start,
                    end=completion,
                )
            )

        self.engine.schedule_at(
            completion,
            lambda ob=obligation, k=slice_index, t=completion: self._on_completion(ob, k, t),
        )
        # The sender may start its next transfer once its port frees.
        self.engine.schedule_at(
            start + timing.sender_busy, lambda n=node: self._try_send(n)
        )

    def _on_completion(self, obligation: _Obligation, slice_index: int, time: float) -> None:
        self._hop_done[(obligation.logical_edge, obligation.hop_index, slice_index)] = time
        if obligation.is_last_hop:
            self._arrival.setdefault(obligation.logical_edge[1], {})[slice_index] = time
        else:
            # Intermediate relays also "hold" the slice from now on (only
            # relevant for readiness of the next hop, handled via _hop_done).
            pass
        self._try_send(obligation.receiver)

    # ------------------------------------------------------------------ #
    # Event-free fast path (canonical in-order schedule)
    # ------------------------------------------------------------------ #
    def _fast_path_applicable(self) -> bool:
        """Whether the in-order schedule can be evaluated without events."""
        from ..kernels.simulation import supports_inorder_fast_path

        return (
            self.policy == "in-order"
            and not self.record_trace
            and supports_inorder_fast_path(self.tree.compiled(self.size), self.model)
        )

    def _run_fast(self) -> SimulationResult:
        """Evaluate the in-order schedule directly from the compiled arrays."""
        from ..kernels.simulation import inorder_direct_run

        ctree = self.tree.compiled(self.size)
        run = inorder_direct_run(ctree, self.num_slices, self.model)
        return inorder_result_from_run(
            self.tree, self.num_slices, self.model, self.size, run, trace=self.trace
        )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        from ..analysis.throughput import tree_throughput  # local import: avoid cycle

        if self._fast_path_applicable():
            return self._run_fast()

        self._build_obligations()
        self._build_resources()
        self.engine.schedule_at(0.0, lambda: self._try_send(self.tree.source))
        max_events = 50 * self.num_slices * max(1, self.platform.num_links) + 1000
        self.engine.run(max_events=max_events)

        unfinished = [node for node, items in self._pending.items() if items]
        if unfinished:
            raise SimulationError(
                f"simulation ended with pending transfers at nodes {unfinished!r}; "
                "the broadcast tree is probably malformed"
            )

        arrivals: dict[NodeName, list[float]] = {}
        for node in self.tree.nodes:
            if node == self.tree.source:
                arrivals[node] = [0.0] * self.num_slices
                continue
            node_arrivals = self._arrival.get(node, {})
            missing = [k for k in range(self.num_slices) if k not in node_arrivals]
            if missing:
                raise SimulationError(
                    f"node {node!r} never received slices {missing[:5]!r}..."
                )
            arrivals[node] = [node_arrivals[k] for k in range(self.num_slices)]

        makespan = max(times[-1] for times in arrivals.values())
        analytical = tree_throughput(self.tree, self.model, self.size).throughput
        measured = self._measure_throughput(arrivals)
        utilization = {
            resource.name: resource.utilization(makespan)
            for resource in [*self._send_port.values(), *self._recv_port.values(), *self._link.values()]
            if resource.busy_time > 0
        }
        return SimulationResult(
            makespan=makespan,
            num_slices=self.num_slices,
            arrival_times=arrivals,
            measured_throughput=measured,
            analytical_throughput=analytical,
            trace=self.trace,
            resource_utilization=utilization,
        )

    def _measure_throughput(self, arrivals: Mapping[NodeName, list[float]]) -> float:
        """Steady-state rate: trailing half of the slices at the slowest node."""
        return measure_steady_rate(arrivals, self.num_slices)


def measure_steady_rate(
    arrivals: Mapping[NodeName, list[float]], num_slices: int
) -> float:
    """Steady-state rate over the trailing half of the slices (slowest node)."""
    if num_slices < 2:
        return float("inf")
    half = num_slices // 2
    if half >= num_slices - 1:
        half = num_slices - 2
    completion_half = max(times[half] for times in arrivals.values())
    completion_last = max(times[-1] for times in arrivals.values())
    measured_slices = num_slices - 1 - half
    if completion_last <= completion_half:
        return float("inf")
    return measured_slices / (completion_last - completion_half)


def inorder_result_from_run(
    tree: BroadcastTree,
    num_slices: int,
    model: PortModel,
    size: float | None,
    run: "tuple",
    trace: SimulationTrace | None = None,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from an event-free in-order run.

    ``run`` is the ``(arrivals, send_busy, recv_busy, link_busy)`` tuple of
    :func:`repro.kernels.simulation.inorder_direct_run` (or one item of
    :func:`repro.kernels.batch.batch_inorder_simulation`, which is the same
    tuple); this is the single assembly path shared by the per-item fast
    path and the ensemble-batched :meth:`repro.api.Session.solve_many`, so
    batched and sequential simulations are identical object for object.
    """
    from ..analysis.throughput import tree_throughput  # local import: avoid cycle

    view = tree.compiled(size).view
    matrix, send_busy, recv_busy, link_busy = run
    # Only the covered nodes receive slices (a multicast tree is partial).
    arrivals: dict[NodeName, list[float]] = {
        name: matrix[view.index_of(name)].tolist() for name in tree.nodes
    }
    arrivals[tree.source] = [0.0] * num_slices
    makespan = max(times[-1] for times in arrivals.values())
    utilization = {}
    for index, busy in send_busy.items():
        utilization[f"send-port:{view.name_of(index)}"] = min(1.0, busy / makespan)
    for index, busy in recv_busy.items():
        utilization[f"recv-port:{view.name_of(index)}"] = min(1.0, busy / makespan)
    for edge_id, busy in link_busy.items():
        utilization[f"link:{view.edge_list[edge_id]}"] = min(1.0, busy / makespan)
    return SimulationResult(
        makespan=makespan,
        num_slices=num_slices,
        arrival_times=arrivals,
        measured_throughput=measure_steady_rate(arrivals, num_slices),
        analytical_throughput=tree_throughput(tree, model, size).throughput,
        trace=trace if trace is not None else SimulationTrace(),
        resource_utilization=utilization,
    )


def simulate_broadcast(
    tree: BroadcastTree,
    num_slices: int = 50,
    *,
    model: PortModel | str | None = None,
    size: float | None = None,
    policy: Policy = "in-order",
    record_trace: bool = True,
) -> SimulationResult:
    """Convenience wrapper: build a simulator, run it, return the result."""
    simulator = PipelinedBroadcastSimulator(
        tree,
        num_slices,
        model=model,
        size=size,
        policy=policy,
        record_trace=record_trace,
    )
    return simulator.run()
