"""Discrete-event simulation of pipelined broadcasts (validation substrate)."""

from .broadcast import PipelinedBroadcastSimulator, SimulationResult, simulate_broadcast
from .collective import scatter_arrivals_reference, simulate_collective
from .engine import SimulationEngine
from .resources import Reservation, SequentialResource
from .trace import SimulationTrace, TransferRecord, render_gantt

__all__ = [
    "PipelinedBroadcastSimulator",
    "SimulationResult",
    "simulate_broadcast",
    "simulate_collective",
    "scatter_arrivals_reference",
    "SimulationEngine",
    "Reservation",
    "SequentialResource",
    "SimulationTrace",
    "TransferRecord",
    "render_gantt",
]
