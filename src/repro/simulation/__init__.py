"""Discrete-event simulation of pipelined broadcasts (validation substrate)."""

from .broadcast import PipelinedBroadcastSimulator, SimulationResult, simulate_broadcast
from .engine import SimulationEngine
from .resources import Reservation, SequentialResource
from .trace import SimulationTrace, TransferRecord, render_gantt

__all__ = [
    "PipelinedBroadcastSimulator",
    "SimulationResult",
    "simulate_broadcast",
    "SimulationEngine",
    "Reservation",
    "SequentialResource",
    "SimulationTrace",
    "TransferRecord",
    "render_gantt",
]
