"""Execution traces of simulated broadcasts.

A trace is the list of every individual transfer performed during a
simulation, with its start/end times and which slice / logical edge it
carried.  Traces serve three purposes:

* validating the schedule (no resource used by two transfers at once, no
  slice forwarded before it was received) — this is what ties the simulator
  back to the paper's model assumptions;
* measuring the achieved steady-state throughput over a trailing window,
  which is compared against the closed-form analysis in tests and in the
  ``simulation_validation`` example;
* debugging / teaching: :func:`render_gantt` draws a small ASCII Gantt
  chart of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..exceptions import SimulationError

__all__ = ["TransferRecord", "SimulationTrace", "render_gantt"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class TransferRecord:
    """One physical transfer of one slice over one link."""

    sender: NodeName
    receiver: NodeName
    slice_index: int
    logical_edge: Edge
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Link occupation of the transfer."""
        return self.end - self.start


@dataclass
class SimulationTrace:
    """Ordered collection of :class:`TransferRecord`."""

    records: list[TransferRecord] = field(default_factory=list)

    def add(self, record: TransferRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TransferRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def by_sender(self, node: NodeName) -> list[TransferRecord]:
        """All transfers emitted by ``node``."""
        return [r for r in self.records if r.sender == node]

    def by_receiver(self, node: NodeName) -> list[TransferRecord]:
        """All transfers received by ``node``."""
        return [r for r in self.records if r.receiver == node]

    def by_slice(self, slice_index: int) -> list[TransferRecord]:
        """All transfers carrying ``slice_index``."""
        return [r for r in self.records if r.slice_index == slice_index]

    def completion_time(self) -> float:
        """End of the last transfer (the simulated makespan)."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records)

    def arrival_times(self, node: NodeName, num_slices: int) -> list[float]:
        """Time at which each slice finally arrived at ``node``.

        For routed transfers only the last hop counts as arrival at the
        logical destination; intermediate relays are excluded.
        """
        arrivals = [float("inf")] * num_slices
        for record in self.records:
            if record.receiver == node and record.logical_edge[1] == node:
                arrivals[record.slice_index] = min(
                    arrivals[record.slice_index], record.end
                )
        return arrivals

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_causality(self, source: NodeName) -> None:
        """Check no node forwards a slice before having received it."""
        arrival: dict[tuple[NodeName, int], float] = {}
        for record in sorted(self.records, key=lambda r: r.end):
            arrival_key = (record.receiver, record.slice_index)
            arrival[arrival_key] = min(arrival.get(arrival_key, float("inf")), record.end)
        for record in self.records:
            if record.sender == source:
                continue
            received_at = arrival.get((record.sender, record.slice_index))
            if received_at is None:
                raise SimulationError(
                    f"{record.sender!r} sent slice {record.slice_index} without ever "
                    "receiving it"
                )
            if record.start < received_at - 1e-9:
                raise SimulationError(
                    f"{record.sender!r} started forwarding slice {record.slice_index} at "
                    f"{record.start} but only received it at {received_at}"
                )

    def steady_state_throughput(
        self, num_slices: int, warmup_fraction: float = 0.5
    ) -> float:
        """Measured throughput over the trailing part of the broadcast.

        The first ``warmup_fraction`` of the slices is discarded so the
        measurement reflects the steady state rather than the pipeline fill
        phase, mirroring how the paper defines throughput.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup_fraction must be in [0, 1)")
        if num_slices <= 1:
            raise SimulationError("need at least 2 slices to measure a rate")
        last_by_slice: dict[int, float] = {}
        for record in self.records:
            index = record.slice_index
            last_by_slice[index] = max(last_by_slice.get(index, 0.0), record.end)
        warmup_slice = int(num_slices * warmup_fraction)
        warmup_slice = min(warmup_slice, num_slices - 2)
        start = last_by_slice[warmup_slice]
        end = last_by_slice[num_slices - 1]
        slices_measured = num_slices - 1 - warmup_slice
        if end <= start:
            return float("inf")
        return slices_measured / (end - start)


def render_gantt(
    trace: SimulationTrace | Iterable[TransferRecord],
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Render an ASCII Gantt chart of the transfers, one row per link."""
    records = list(trace)
    if not records:
        return "(empty trace)"
    horizon = max(r.end for r in records)
    if horizon <= 0:
        return "(degenerate trace)"
    rows: dict[Edge, list[TransferRecord]] = {}
    for record in records:
        rows.setdefault((record.sender, record.receiver), []).append(record)

    lines: list[str] = [f"time 0 .. {horizon:.2f} ({len(records)} transfers)"]
    for index, (edge, edge_records) in enumerate(sorted(rows.items(), key=lambda kv: str(kv[0]))):
        if index >= max_rows:
            lines.append(f"... {len(rows) - max_rows} more links not shown")
            break
        cells = [" "] * width
        for record in edge_records:
            start_col = int(record.start / horizon * (width - 1))
            end_col = max(start_col + 1, int(record.end / horizon * (width - 1)))
            mark = str(record.slice_index % 10)
            for col in range(start_col, min(end_col, width)):
                cells[col] = mark
        lines.append(f"{str(edge):<18} |{''.join(cells)}|")
    return "\n".join(lines)
