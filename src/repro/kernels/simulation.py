"""Event-free fast path for the in-order pipelined-broadcast simulation.

The canonical in-order schedule of
:class:`~repro.simulation.broadcast.PipelinedBroadcastSimulator` needs no
event heap: every resource serves its obligations in a *predetermined*
order (slice-major, child-minor per sender; per-link and per-receiver
sequences are subsequences of that), so the schedule **is** a recurrence and
can be evaluated directly:

* **one-port** — each transfer blocks sender port, link and receiver port
  for the full ``T_{u,v}``, which makes the link/receiver constraints
  provably redundant with the sender-port serialisation on direct trees;
  the arrivals are exactly the analytical recurrence of
  :func:`repro.kernels.makespan.arrival_matrix` (vectorized over slices).
* **multi-port** — the per-send overhead ``min(send_u, T)`` frees the
  sender's port before the link drains, so the link occupation of the
  previous slice *can* bind; a lean scalar recurrence mirrors the event
  simulator's arithmetic operation for operation (bit-identical results)
  at a fraction of its interpreter cost.

Only direct trees qualify: a routed tree lets several senders share one
receiver port, and that interleaving is genuinely event-driven.  The caller
(:meth:`PipelinedBroadcastSimulator.run`) keeps the event engine for routed
trees, the greedy policy, tracing, and custom port models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..models.port_models import MultiPortModel, OnePortModel, PortModel
from .makespan import arrival_matrix, supports_model
from .tree import CompiledTree

__all__ = [
    "supports_inorder_fast_path",
    "inorder_direct_run",
    "supports_scatter_fast_path",
    "scatter_direct_run",
]

NodeName = Any


def supports_inorder_fast_path(ctree: CompiledTree, model: PortModel) -> bool:
    """Whether the event-free in-order schedule applies to this tree/model."""
    return supports_model(model) and ctree.is_direct


def inorder_direct_run(
    ctree: CompiledTree, num_slices: int, model: PortModel
) -> tuple[np.ndarray, dict[int, float], dict[int, float], dict[int, float]]:
    """Arrivals and resource busy times of the in-order schedule.

    Returns ``(arrivals, send_busy, recv_busy, link_busy)`` where
    ``arrivals[i, k]`` is the reception time of slice ``k`` at node ``i``,
    ``send_busy``/``recv_busy`` map node indices to total port occupation and
    ``link_busy`` maps first-hop edge ids to total link occupation — the
    exact quantities the event engine accumulates on its
    :class:`~repro.simulation.resources.SequentialResource` objects.
    """
    if not supports_inorder_fast_path(ctree, model):
        raise ValueError("in-order fast path requires a direct tree and a canonical model")
    if type(model) is OnePortModel:
        return _one_port_run(ctree, num_slices, model)
    return _multi_port_run(ctree, num_slices, model)


# --------------------------------------------------------------------------- #
# One-port: the schedule equals the analytical recurrence
# --------------------------------------------------------------------------- #
def _one_port_run(ctree: CompiledTree, num_slices: int, model: OnePortModel):
    view = ctree.view
    arrivals = arrival_matrix(ctree, num_slices, model)
    send_busy: dict[int, float] = {}
    recv_busy: dict[int, float] = {}
    link_busy: dict[int, float] = {}
    for node in ctree.bfs.tolist():
        slots = ctree.child_slots_of(node)
        if not len(slots):
            continue
        hops = view.transfer_times[ctree.first_hop_edge_ids[slots]]
        # The engine accumulates busy time one reservation at a time, in
        # dispatch order; replay the same left-fold rounding.
        send_busy[node] = float(np.cumsum(np.tile(hops, num_slices))[-1])
        for j, slot in enumerate(slots.tolist()):
            occupation = float(np.cumsum(np.full(num_slices, hops[j]))[-1])
            link_busy[int(ctree.first_hop_edge_ids[slot])] = occupation
            recv_busy[int(ctree.child_nodes[slot])] = occupation
    return arrivals, send_busy, recv_busy, link_busy


# --------------------------------------------------------------------------- #
# Multi-port: lean scalar replay of the event simulator's arithmetic
# --------------------------------------------------------------------------- #
def supports_scatter_fast_path(ctree: CompiledTree, model: PortModel) -> bool:
    """Whether the index-based scatter replay applies to this tree/model."""
    return supports_model(model) and ctree.is_direct


def scatter_direct_run(
    ctree: CompiledTree, target_indices: "list[int]", num_rounds: int, model: PortModel
) -> dict[int, np.ndarray]:
    """Arrival times of every target's *own* messages under distinct-message replay.

    One scatter round sends a distinct message per target; node ``u`` serves
    its obligations round-major, child-major, and within a child the
    messages of the child's subtree targets ordered by ``str(name)`` — the
    canonical in-order schedule of
    :func:`repro.simulation.collective.simulate_collective`, whose
    name-keyed reference loop this mirrors operation for operation.

    Returns ``{target index: arrivals[num_rounds]}`` where entry ``k`` is
    when target ``t`` received its own round-``k`` message.
    """
    if not supports_scatter_fast_path(ctree, model):
        raise ValueError("scatter fast path requires a direct tree and a canonical model")
    view = ctree.view
    hop_times = view.transfer_times
    if type(model) is OnePortModel:
        send_times = None
        recv_overheads = None
    else:
        send_times = view.node_send_times(model.send_fraction)
        recv_overheads = view.recv_overheads

    target_set = set(int(t) for t in target_indices)
    names = view.node_names

    # Per child slot: the subtree targets whose messages cross it, ordered
    # by str(name) (matching the reference's deterministic message order).
    subtree_targets: dict[int, list[int]] = {}
    for node in ctree.bfs.tolist()[::-1]:
        mine = [node] if node in target_set and node != ctree.source else []
        for child in ctree.children_of(node).tolist():
            mine.extend(subtree_targets[child])
        subtree_targets[node] = sorted(mine, key=lambda i: str(names[i]))

    # arrivals[node] holds, per subtree target of ``node``, the round-indexed
    # arrival times of that target's messages at ``node``.
    arrivals: dict[int, dict[int, np.ndarray]] = {
        ctree.source: {t: np.zeros(num_rounds) for t in subtree_targets[ctree.source]}
    }
    for node in ctree.bfs.tolist():
        slots = ctree.child_slots_of(node)
        if not len(slots):
            continue
        children = ctree.child_nodes[slots].tolist()
        edges = ctree.first_hop_edge_ids[slots].tolist()
        here = arrivals[node]
        hops = [float(hop_times[e]) for e in edges]
        if send_times is None:
            busies = hops
            recvs = [0.0] * len(slots)
        else:
            send_time = float(send_times[node])
            busies = [min(send_time, hop) for hop in hops]
            recvs = []
            for j, child in enumerate(children):
                overhead = float(recv_overheads[child])
                recvs.append(min(overhead, hops[j]) if overhead == overhead else 0.0)
        offsets = [hops[j] - recvs[j] for j in range(len(slots))]
        rows: dict[int, dict[int, np.ndarray]] = {
            child: {t: np.empty(num_rounds) for t in subtree_targets[child]}
            for child in children
        }
        send_free = 0.0
        link_free = [0.0] * len(slots)
        recv_free = [0.0] * len(slots)
        for k in range(num_rounds):
            for j, child in enumerate(children):
                for t in subtree_targets[child]:
                    ready = 0.0 if node == ctree.source else float(here[t][k])
                    start = max(ready, send_free, link_free[j])
                    if recvs[j] > 0:
                        start = max(start, recv_free[j] - offsets[j])
                    send_free = start + busies[j]
                    link_free[j] = start + hops[j]
                    if recvs[j] > 0:
                        recv_free[j] = (start + offsets[j]) + recvs[j]
                    rows[child][t][k] = start + hops[j]
        for child in children:
            arrivals[child] = rows[child]

    # Under one-port the receiver is blocked for the full hop, so the
    # sender-port serialisation already dominates; either way the recurrence
    # above reproduced the event arithmetic directly.
    return {
        t: arrivals[t][t]
        for t in sorted(target_set, key=lambda i: str(names[i]))
        if t in arrivals
    }


def _multi_port_run(ctree: CompiledTree, num_slices: int, model: MultiPortModel):
    view = ctree.view
    send_times = view.node_send_times(model.send_fraction)
    recv_overheads = view.recv_overheads
    hop_times = view.transfer_times

    arrivals = np.zeros((ctree.num_nodes, num_slices))
    send_busy: dict[int, float] = {}
    recv_busy: dict[int, float] = {}
    link_busy: dict[int, float] = {}
    for node in ctree.bfs.tolist():
        slots = ctree.child_slots_of(node)
        if not len(slots):
            continue
        children = ctree.child_nodes[slots].tolist()
        edges = ctree.first_hop_edge_ids[slots].tolist()
        hops = [float(hop_times[e]) for e in edges]
        send_time = float(send_times[node])
        busies = [min(send_time, hop) for hop in hops]
        # receiver_busy = min(recv_v, T); nan recv overhead means "unset" (0).
        recvs = []
        for j, child in enumerate(children):
            overhead = float(recv_overheads[child])
            recvs.append(min(overhead, hops[j]) if overhead == overhead else 0.0)
        offsets = [hops[j] - recvs[j] for j in range(len(slots))]

        ready = arrivals[node].tolist()
        rows = [np.empty(num_slices) for _ in slots]
        send_free = 0.0
        link_free = [0.0] * len(slots)
        recv_free = [0.0] * len(slots)
        send_total = 0.0
        link_total = [0.0] * len(slots)
        recv_total = [0.0] * len(slots)
        for k in range(num_slices):
            ready_k = ready[k]
            for j in range(len(slots)):
                start = max(ready_k, send_free, link_free[j])
                if recvs[j] > 0:
                    start = max(start, recv_free[j] - offsets[j])
                send_free = start + busies[j]
                link_free[j] = start + hops[j]
                send_total += busies[j]
                link_total[j] += hops[j]
                if recvs[j] > 0:
                    recv_free[j] = (start + offsets[j]) + recvs[j]
                    recv_total[j] += recvs[j]
                rows[j][k] = start + hops[j]
        # The engine only reports resources with busy_time > 0; a zero
        # explicit send overhead makes every send free, so mirror the filter.
        if send_total > 0:
            send_busy[node] = send_total
        for j, child in enumerate(children):
            arrivals[child] = rows[j]
            link_busy[int(edges[j])] = link_total[j]
            if recv_total[j] > 0:
                recv_busy[child] = recv_total[j]
    return arrivals, send_busy, recv_busy, link_busy
