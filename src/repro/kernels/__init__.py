"""Array-backed fast-path kernels for the hot evaluation loops.

This package hosts the integer-indexed, slice-vectorized counterparts of
the pure-Python reference implementations spread across ``analysis``,
``simulation`` and ``core``:

* :mod:`~repro.kernels.tree` — :class:`CompiledTree`, the per-tree analogue
  of :class:`~repro.platform.compiled.CompiledPlatform`;
* :mod:`~repro.kernels.makespan` — running-max scans for the pipelined
  makespan recurrence;
* :mod:`~repro.kernels.simulation` — the event-free in-order simulation
  schedule;
* :mod:`~repro.kernels.batch` — :class:`EnsembleBatch`, the ragged
  cross-platform stacking of many compiled trees, with ensemble-batched
  makespan / simulation sweeps;
* :mod:`~repro.kernels.batch_lp` — one concatenated COO assembly pass for
  a whole ensemble of steady-state LPs;
* :mod:`~repro.kernels.frontier` — lazy min-heap frontier for the growing
  heuristics;
* :mod:`~repro.kernels.spanning` — incremental reachability oracle for the
  pruning heuristics;
* :mod:`~repro.kernels.periods` — delta evaluation of node periods for the
  local search.

Every kernel has a reference twin kept in its original module (suffixed
``_reference`` or selectable with ``fast=False``); the test suite asserts
the two agree — bit-identically wherever the arithmetic is not
re-associated, to ``1e-12`` relative otherwise (see ``tests/test_kernels.py``).
"""

from .batch import (
    EnsembleBatch,
    batch_arrival_matrices,
    batch_inorder_simulation,
    batch_pipelined_makespan,
)
from .batch_lp import LPBatch, batch_lp_assembly
from .frontier import LazyFrontier
from .makespan import arrival_matrix, supports_model
from .periods import PeriodTracker
from .simulation import inorder_direct_run, supports_inorder_fast_path
from .spanning import SpanningOracle
from .tree import CompiledTree, compile_tree

__all__ = [
    "CompiledTree",
    "compile_tree",
    "EnsembleBatch",
    "LPBatch",
    "LazyFrontier",
    "PeriodTracker",
    "SpanningOracle",
    "arrival_matrix",
    "batch_arrival_matrices",
    "batch_inorder_simulation",
    "batch_lp_assembly",
    "batch_pipelined_makespan",
    "supports_model",
    "inorder_direct_run",
    "supports_inorder_fast_path",
]
