"""Ensemble-batched schedule kernels: many compiled trees, one numpy sweep.

:mod:`repro.kernels.makespan` and :mod:`repro.kernels.simulation` removed the
per-``(node, slice)`` interpreter cost *inside* one platform; a campaign still
pays Python-level dispatch *between* platforms — thousands of
``arrival_matrix`` calls, each a loop of small numpy operations.
:class:`EnsembleBatch` removes that axis too: it stacks many
:class:`~repro.kernels.tree.CompiledTree` /
:class:`~repro.platform.compiled.CompiledPlatform` snapshots into one ragged
tensor bundle and evaluates the canonical pipelined schedule of the *whole
ensemble* level by level, so the number of interpreted steps is the maximum
tree depth of the batch instead of the total node count.

Ragged layout
-------------
Items keep their own node counts; nothing is resampled or truncated:

* **Concatenation + offsets** — per-node quantities of item ``i`` live at
  global rows ``node_offsets[i]:node_offsets[i + 1]`` (same for the per-slot
  arrays via ``item_slot_indptr``), exactly the CSR convention the compiled
  views already use.  An item's arrival matrix is a contiguous row-slice of
  the global ``(total_nodes, num_slices)`` matrix.
* **Per-level padding** — the lockstep sweep groups all parents of one BFS
  depth (across every item) into a rectangle of ``max_children`` slots.
  Padded slots carry ``busy = 0.0`` and ``ready = -inf``: a ``+ 0.0`` leaves
  every IEEE prefix sum bit-identical and a ``-inf`` never wins a running
  maximum, so the padded scans reproduce the per-item
  :func:`~repro.kernels.makespan.arrival_matrix` recurrence *exactly* —
  bit-for-bit, not just to rounding — which is what lets
  :class:`~repro.api.Session` substitute batched results for sequential ones.

Items the vector sweep cannot express — routed (multi-hop) trees, whose relay
ports serialize obligations across levels — fall back to the per-item kernel
inside the same call, so a mixed ensemble still returns one coherent result
set.  The multi-port in-order *simulation* (where link occupation of the
previous slice can bind) likewise falls back to the scalar per-item replay.

The stacked arrays are plain contiguous ndarrays by design: they are exactly
what a shared-memory worker pool (ROADMAP item 3) would place in
``multiprocessing.shared_memory``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..models.port_models import MultiPortModel, OnePortModel, PortModel
from .makespan import arrival_matrix, supports_model
from .simulation import _multi_port_run
from .tree import CompiledTree

__all__ = [
    "EnsembleBatch",
    "batch_arrival_matrices",
    "batch_pipelined_makespan",
    "batch_inorder_simulation",
]


@dataclass(frozen=True)
class _Level:
    """One BFS depth of the ensemble, padded rectangular (see module doc)."""

    parent_rows: np.ndarray  # (P,) global node ids of the level's senders
    mask: np.ndarray  # (P, S) True where a slot is real, False where padded
    busy: np.ndarray  # (P, S) sender-port busy time per slot (0 where padded)
    hop: np.ndarray  # (P, S) link transfer time per slot (0 where padded)
    child_rows: np.ndarray  # (P, S) global child node id per slot (-1 padded)


@dataclass(frozen=True, eq=False)  # identity semantics: ndarray fields
class EnsembleBatch:
    """Many compiled trees stacked into one ragged batch (see module doc).

    Attributes
    ----------
    trees:
        The compiled trees, in item order.
    model:
        The shared port model every item is evaluated under (one of the two
        canonical models; :func:`~repro.kernels.makespan.supports_model`).
    node_offsets:
        ``(num_items + 1,)`` — item ``i`` owns global node rows
        ``node_offsets[i]:node_offsets[i + 1]``.
    item_slot_indptr:
        ``(num_items + 1,)`` — item ``i`` owns global child-slot positions
        ``item_slot_indptr[i]:item_slot_indptr[i + 1]``.
    slot_counts / slot_indptr:
        Child-slot CSR over *global* node ids.
    slot_child / slot_hop / slot_busy / slot_first_edge_local:
        Per global slot: global child node id, first-hop transfer time,
        sender-port busy time under :attr:`model`, and the first-hop edge id
        *local to the item* (for resource bookkeeping).
    vector_items / fallback_items:
        Item indices the lockstep sweep covers (direct trees) vs the items
        evaluated through the per-item kernel (routed trees).
    levels:
        Precomputed padded rectangles, one per BFS depth of the batch.
    """

    #: The stacked ndarray attributes, in a stable order — the payload of
    #: :meth:`array_bundle` (shared-memory publication to pool workers).
    ARRAY_FIELDS = (
        "node_offsets",
        "item_slot_indptr",
        "slot_counts",
        "slot_indptr",
        "slot_child",
        "slot_hop",
        "slot_busy",
        "slot_first_edge_local",
    )

    trees: tuple[CompiledTree, ...]
    model: PortModel
    node_offsets: np.ndarray
    item_slot_indptr: np.ndarray
    slot_counts: np.ndarray
    slot_indptr: np.ndarray
    slot_child: np.ndarray
    slot_hop: np.ndarray
    slot_busy: np.ndarray
    slot_first_edge_local: np.ndarray
    vector_items: tuple[int, ...]
    fallback_items: tuple[int, ...]
    levels: tuple[_Level, ...]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trees(
        cls, trees: Sequence[CompiledTree], model: PortModel
    ) -> "EnsembleBatch":
        """Stack ``trees`` for evaluation under ``model``.

        Every tree may live on a different platform, at a different node
        count and message size; routed trees are accepted and routed through
        the per-item fallback.  Raises :class:`ValueError` for an empty
        ensemble or a non-canonical port model.
        """
        trees = tuple(trees)
        if not trees:
            raise ValueError("an EnsembleBatch needs at least one tree")
        if not supports_model(model):
            raise ValueError(f"unsupported port model for batched kernels: {model!r}")
        one_port = type(model) is OnePortModel

        node_counts = np.asarray([t.num_nodes for t in trees], dtype=np.int64)
        node_offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        np.cumsum(node_counts, out=node_offsets[1:])

        parents_g = np.concatenate(
            [
                np.where(t.parents >= 0, t.parents + off, -1)
                for t, off in zip(trees, node_offsets[:-1].tolist())
            ]
        )
        slot_counts = np.concatenate([np.diff(t.child_indptr) for t in trees])
        slot_indptr = np.zeros(len(slot_counts) + 1, dtype=np.int64)
        np.cumsum(slot_counts, out=slot_indptr[1:])
        item_slot_indptr = slot_indptr[node_offsets]

        slot_child = np.concatenate(
            [t.child_nodes + off for t, off in zip(trees, node_offsets[:-1].tolist())]
        )
        slot_first_edge_local = np.concatenate([t.first_hop_edge_ids for t in trees])
        slot_hop = np.concatenate(
            [t.view.transfer_times[t.first_hop_edge_ids] for t in trees]
        )
        if one_port:
            slot_busy = slot_hop
        else:
            send_g = np.concatenate(
                [t.view.node_send_times(model.send_fraction) for t in trees]
            )
            parent_of_slot = np.repeat(
                np.arange(len(slot_counts), dtype=np.int64), slot_counts
            )
            slot_busy = np.minimum(send_g[parent_of_slot], slot_hop)

        vector_items = tuple(i for i, t in enumerate(trees) if t.is_direct)
        fallback_items = tuple(i for i, t in enumerate(trees) if not t.is_direct)

        # Node depths via synchronized parent-chain hops: O(max depth) numpy
        # steps for the whole ensemble instead of a per-node Python walk.
        depth = np.zeros(len(parents_g), dtype=np.int64)
        cursor = parents_g.copy()
        while True:
            alive = cursor >= 0
            if not alive.any():
                break
            depth[alive] += 1
            cursor = np.where(alive, parents_g[np.where(alive, cursor, 0)], -1)

        vector_node = np.zeros(len(parents_g), dtype=bool)
        for i in vector_items:
            vector_node[node_offsets[i] : node_offsets[i + 1]] = True

        levels: list[_Level] = []
        senders = vector_node & (slot_counts > 0)
        max_depth = int(depth.max()) if len(depth) else 0
        for d in range(max_depth + 1):
            sel = np.flatnonzero(senders & (depth == d))
            if not len(sel):
                continue
            counts = slot_counts[sel]
            width = int(counts.max())
            columns = np.arange(width, dtype=np.int64)
            mask = columns[None, :] < counts[:, None]
            # Clipped gather: padded cells re-read the slot at position 0 and
            # are immediately neutralized through ``mask``.
            gather = slot_indptr[sel][:, None] + np.where(mask, columns[None, :], 0)
            levels.append(
                _Level(
                    parent_rows=sel,
                    mask=mask,
                    busy=np.where(mask, slot_busy[gather], 0.0),
                    hop=np.where(mask, slot_hop[gather], 0.0),
                    child_rows=np.where(mask, slot_child[gather], -1),
                )
            )

        return cls(
            trees=trees,
            model=model,
            node_offsets=node_offsets,
            item_slot_indptr=item_slot_indptr,
            slot_counts=slot_counts,
            slot_indptr=slot_indptr,
            slot_child=slot_child,
            slot_hop=slot_hop,
            slot_busy=slot_busy,
            slot_first_edge_local=slot_first_edge_local,
            vector_items=vector_items,
            fallback_items=fallback_items,
            levels=tuple(levels),
        )

    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        """Number of stacked trees."""
        return len(self.trees)

    @property
    def total_nodes(self) -> int:
        """Sum of the items' node counts (rows of the global arrival matrix)."""
        return int(self.node_offsets[-1])

    def array_bundle(self) -> "dict[str, np.ndarray]":
        """The stacked arrays as a name → ndarray mapping.

        This is the shape :func:`repro.shm.pack_arrays` consumes, so a
        batch built once can be published into a shared-memory segment and
        re-viewed zero-copy by warm pool workers (the trees themselves are
        rebuilt worker-side from the shared compiled-platform arrays).
        """
        return {name: getattr(self, name) for name in self.ARRAY_FIELDS}

    @property
    def nbytes(self) -> int:
        """Bytes held by the stacked arrays (excluding the compiled views)."""
        arrays = [getattr(self, name) for name in self.ARRAY_FIELDS]
        total = sum(a.nbytes for a in arrays)
        for level in self.levels:
            total += (
                level.parent_rows.nbytes
                + level.mask.nbytes
                + level.busy.nbytes
                + level.hop.nbytes
                + level.child_rows.nbytes
            )
        return total

    def item_rows(self, item: int) -> slice:
        """Global node-row slice of ``item``."""
        return slice(int(self.node_offsets[item]), int(self.node_offsets[item + 1]))

    def __repr__(self) -> str:
        return (
            f"EnsembleBatch(items={self.num_items}, nodes={self.total_nodes}, "
            f"levels={len(self.levels)}, fallback={len(self.fallback_items)})"
        )


# --------------------------------------------------------------------------- #
# Batched kernels
# --------------------------------------------------------------------------- #
def batch_arrival_matrices(
    batch: EnsembleBatch,
    num_slices: int,
    *,
    collect_send_totals: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Arrival times of every item's canonical schedule, in one sweep.

    Returns ``(arrivals, send_totals)``: ``arrivals`` is the global
    ``(total_nodes, num_slices)`` matrix whose row-slice
    ``batch.item_rows(i)`` equals
    :func:`~repro.kernels.makespan.arrival_matrix` of item ``i``
    bit-for-bit; ``send_totals`` (only with ``collect_send_totals``, and only
    for vector items) accumulates each sender's total port occupation with
    the same left-fold rounding the per-item simulation fast path uses.
    """
    if num_slices < 1:
        raise ValueError(f"num_slices must be >= 1, got {num_slices}")
    arrivals = np.zeros((batch.total_nodes, num_slices))
    send_totals = np.zeros(batch.total_nodes) if collect_send_totals else None

    for level in batch.levels:
        parents, width = level.mask.shape
        ready_scan = np.repeat(arrivals[level.parent_rows], width, axis=1)
        if width > 1:
            ready_scan[~np.tile(level.mask, (1, num_slices))] = -np.inf
        busy_scan = np.tile(level.busy, (1, num_slices))
        prefix = np.zeros_like(busy_scan)
        np.cumsum(busy_scan[:, :-1], axis=1, out=prefix[:, 1:])
        start = prefix + np.maximum.accumulate(ready_scan - prefix, axis=1)
        available = start + np.tile(level.hop, (1, num_slices))
        series = available.reshape(parents, num_slices, width).transpose(0, 2, 1)
        arrivals[level.child_rows[level.mask]] = series[level.mask]
        if send_totals is not None:
            send_totals[level.parent_rows] = prefix[:, -1] + busy_scan[:, -1]

    for i in batch.fallback_items:
        arrivals[batch.item_rows(i)] = arrival_matrix(
            batch.trees[i], num_slices, batch.model
        )
    return arrivals, send_totals


def batch_pipelined_makespan(
    batch: EnsembleBatch, num_slices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-item makespans and fill times of the canonical schedule.

    Returns ``(makespans, fill_times)`` of shape ``(num_items,)``, each
    entry bit-identical to what
    :func:`repro.analysis.makespan.pipelined_makespan` reports for the
    corresponding tree (``makespan`` / ``fill_time`` fields).
    """
    arrivals, _ = batch_arrival_matrices(batch, num_slices)
    starts = batch.node_offsets[:-1]
    makespans = np.maximum.reduceat(arrivals[:, num_slices - 1], starts)
    fills = np.maximum.reduceat(arrivals[:, 0], starts)
    return makespans, fills


def batch_inorder_simulation(
    batch: EnsembleBatch, num_slices: int
) -> list[tuple[np.ndarray, dict[int, float], dict[int, float], dict[int, float]]]:
    """Event-free in-order simulation of every item of the batch.

    Returns, per item, the exact
    ``(arrivals, send_busy, recv_busy, link_busy)`` tuple of
    :func:`repro.kernels.simulation.inorder_direct_run` — one-port items
    share the single batched sweep; multi-port items are replayed through
    the scalar per-item recurrence (their link occupation genuinely couples
    consecutive slices).  Raises :class:`ValueError` when any item is a
    routed tree (the in-order fast path never applies to those).
    """
    if batch.fallback_items:
        raise ValueError(
            "the batched in-order simulation requires direct trees; items "
            f"{list(batch.fallback_items)!r} are routed"
        )
    if type(batch.model) is MultiPortModel:
        return [_multi_port_run(t, num_slices, batch.model) for t in batch.trees]

    arrivals_g, send_totals = batch_arrival_matrices(
        batch, num_slices, collect_send_totals=True
    )
    occupations = _repeated_sum(batch.slot_hop, num_slices)

    results = []
    for i, tree in enumerate(batch.trees):
        rows = batch.item_rows(i)
        node_base = rows.start
        send_busy: dict[int, float] = {}
        recv_busy: dict[int, float] = {}
        link_busy: dict[int, float] = {}
        # BFS-ordered like the per-item run, so the dicts match key for key.
        for local in tree.bfs.tolist():
            g = node_base + local
            lo, hi = int(batch.slot_indptr[g]), int(batch.slot_indptr[g + 1])
            if lo == hi:
                continue
            send_busy[local] = float(send_totals[g])
            for s in range(lo, hi):
                occupation = float(occupations[s])
                link_busy[int(batch.slot_first_edge_local[s])] = occupation
                recv_busy[int(batch.slot_child[s]) - node_base] = occupation
        results.append((arrivals_g[rows], send_busy, recv_busy, link_busy))
    return results


def _repeated_sum(values: np.ndarray, count: int) -> np.ndarray:
    """``cumsum(full(count, v))[-1]`` for every ``v``, deduplicated.

    The engine accumulates a link/receiver occupation one reservation at a
    time; replaying that left fold keeps the totals bit-identical.  Equal
    values share one fold (the chain only depends on the value), so the
    temporary is ``(unique values, count)`` instead of ``(slots, count)``.
    """
    if not len(values):
        return np.zeros(0)
    unique, inverse = np.unique(values, return_inverse=True)
    folded = np.cumsum(
        np.broadcast_to(unique[:, None], (len(unique), count)), axis=1
    )[:, -1]
    return folded[inverse]
