"""Slice-vectorized kernel for the canonical pipelined-broadcast recurrence.

:func:`repro.analysis.makespan.pipelined_makespan_reference` walks every
``(node, slice)`` pair of the tree in pure Python.  The per-node recurrence
is a *max-plus left fold* over the node's flattened obligation sequence
(slice-major, child-minor)::

    F_i = max(F_{i-1}, ready_i) + busy_i          # output-port availability
    start_i = max(F_{i-1}, ready_i)

which has the closed form (``S`` = inclusive prefix sum of ``busy``)::

    start_i = S_{i-1} + max_{l <= i} (ready_l - S_{l-1})

i.e. one :func:`numpy.cumsum` plus one :func:`numpy.maximum.accumulate` per
node instead of ``num_slices * num_children`` interpreted steps.  Relay hops
of routed (binomial) trees are the same scan with a constant port increment,
as long as every relay port serves a single obligation of its parent; a
parent whose children share a relay falls back to the scalar recurrence for
that node only, so the rest of the tree stays vectorized.

The kernel reproduces the reference *recurrence* exactly; only the float
rounding of the prefix sums is re-associated.  On platforms whose transfer
times and overheads are integers (or any dyadic rationals) every
intermediate quantity is exact, and the kernel is bit-identical to the
reference — the property tests assert exactly that, plus ``1e-12``-relative
agreement on continuous random platforms.
"""

from __future__ import annotations

import numpy as np

from ..models.port_models import MultiPortModel, OnePortModel, PortModel
from .tree import CompiledTree

__all__ = ["supports_model", "arrival_matrix"]


def supports_model(model: PortModel) -> bool:
    """Whether the kernel can evaluate ``model``'s transfer timings.

    Only the two canonical models are vectorized; subclasses overriding the
    per-transfer arithmetic silently fall back to the reference loop.
    """
    return type(model) in (OnePortModel, MultiPortModel)


def arrival_matrix(
    ctree: CompiledTree, num_slices: int, model: PortModel
) -> np.ndarray:
    """Per-node slice arrival times of the canonical round-robin schedule.

    Returns an array ``A`` of shape ``(num_nodes, num_slices)`` where
    ``A[i, k]`` is the time node ``i`` fully receives slice ``k`` (the source
    row is all zeros) — the same values
    :func:`~repro.analysis.makespan.pipelined_makespan_reference` computes
    node by node.
    """
    if not supports_model(model):
        raise ValueError(f"unsupported port model for the kernel: {model!r}")
    view = ctree.view
    one_port = type(model) is OnePortModel
    send_times = None if one_port else view.node_send_times(model.send_fraction)
    hop_times = view.transfer_times

    arrivals = np.zeros((ctree.num_nodes, num_slices))
    for node in ctree.bfs.tolist():
        slots = ctree.child_slots_of(node)
        if not len(slots):
            continue
        ready = arrivals[node]
        routes = [ctree.route_of(int(slot)).tolist() for slot in slots]
        if any(len(route) > 1 for route in routes) and _relays_shared(view, routes):
            _scalar_node(ctree, node, routes, ready, arrivals, one_port, send_times)
            continue

        # First hops: one flattened scan over the node's send port.
        first_edges = np.asarray([route[0] for route in routes], dtype=np.int64)
        hop = hop_times[first_edges]
        busy = hop if one_port else np.minimum(send_times[node], hop)
        start = _port_scan(np.repeat(ready, len(slots)), np.tile(busy, num_slices))
        available = (start + np.tile(hop, num_slices)).reshape(num_slices, len(slots))

        # Remaining hops: store-and-forward chains on dedicated relay ports.
        for j, route in enumerate(routes):
            chain = available[:, j]
            for edge in route[1:]:
                hop_time = hop_times[edge]
                relay_busy = (
                    hop_time
                    if one_port
                    else min(send_times[view.edge_sources[edge]], hop_time)
                )
                offsets = relay_busy * np.arange(num_slices)
                chain = (
                    offsets + np.maximum.accumulate(chain - offsets) + hop_time
                )
            arrivals[ctree.child_nodes[slots[j]]] = chain
    return arrivals


def _port_scan(ready: np.ndarray, busy: np.ndarray) -> np.ndarray:
    """Start times of a serialised port serving obligations in sequence.

    ``ready[i]`` / ``busy[i]`` describe obligation ``i`` in port order; the
    port is initially free at time 0 and readiness is never negative.
    """
    prefix = np.empty(len(busy))
    prefix[0] = 0.0
    np.cumsum(busy[:-1], out=prefix[1:])
    return prefix + np.maximum.accumulate(ready - prefix)


def _relays_shared(view, routes: list[list[int]]) -> bool:
    """Whether two obligations of one parent share a relay sender."""
    seen: set[int] = set()
    for route in routes:
        for edge in route[1:]:
            relay = int(view.edge_sources[edge])
            if relay in seen:
                return True
            seen.add(relay)
    return False


def _scalar_node(
    ctree: CompiledTree,
    node: int,
    routes: list[list[int]],
    ready: np.ndarray,
    arrivals: np.ndarray,
    one_port: bool,
    send_times,
) -> None:
    """Reference recurrence for one parent whose relays are shared.

    Mirrors the per-node loop of ``pipelined_makespan_reference`` exactly
    (same operations, same order), so shared-relay routed trees stay correct
    without forcing the whole tree off the fast path.
    """
    view = ctree.view
    hop_times = view.transfer_times
    num_slices = arrivals.shape[1]
    slots = ctree.child_slots_of(node)
    children = ctree.child_nodes[slots]
    ready_list = ready.tolist()
    rows = [np.empty(num_slices) for _ in routes]
    send_port_free = 0.0
    relay_port_free: dict[int, float] = {}
    for k in range(num_slices):
        for j, route in enumerate(routes):
            first_hop = route[0]
            hop_time = float(hop_times[first_hop])
            busy = (
                hop_time
                if one_port
                else min(float(send_times[node]), hop_time)
            )
            start = max(send_port_free, ready_list[k])
            send_port_free = start + busy
            available = start + hop_time
            for edge in route[1:]:
                hop_time = float(hop_times[edge])
                relay = int(view.edge_sources[edge])
                busy = (
                    hop_time
                    if one_port
                    else min(float(send_times[relay]), hop_time)
                )
                start = max(relay_port_free.get(relay, 0.0), available)
                relay_port_free[relay] = start + busy
                available = start + hop_time
            rows[j][k] = available
    for j in range(len(routes)):
        arrivals[children[j]] = rows[j]
