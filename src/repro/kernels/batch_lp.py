"""Batched assembly of many steady-state collective LPs in one COO pass.

The per-item assembly (:func:`repro.lp.formulation.build_collective_lp`) is
already vectorized *within* one platform; a campaign still builds thousands
of small LPs one ``scipy.sparse`` construction at a time.
:func:`batch_lp_assembly` runs the shared triplet builder
(:func:`repro.lp.formulation.collective_lp_triplets` — the *same* code path
the per-item builder uses, so entries are identical by construction) over a
whole ensemble and concatenates everything into one block-diagonal COO
buffer: global ``rows/cols/data`` with per-item row/column/entry offsets.

The concatenated buffer is the contiguous, shareable form ROADMAP item 3's
shared-memory worker pools need; :meth:`LPBatch.data_for` splits one item
back out as a solver-ready
:class:`~repro.lp.formulation.SteadyStateLPData`, and
:meth:`LPBatch.block_matrices` materialises the whole ensemble as one
block-diagonal system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np
from scipy import sparse

from ..collectives import CollectiveSpec
from ..lp.formulation import (
    CollectiveLPTriplets,
    SteadyStateLPData,
    collective_lp_triplets,
)
from ..platform.graph import Platform

__all__ = ["LPBatch", "batch_lp_assembly"]

NodeName = Any


@dataclass(frozen=True, eq=False)  # identity semantics: ndarray fields
class LPBatch:
    """Block-diagonal COO buffers of an ensemble of collective LPs.

    ``eq_*`` / ``ub_*`` are the concatenated triplets of every item's
    equality / inequality system with item ``i``'s rows shifted by
    ``eq_row_offsets[i]`` (resp. ``ub_row_offsets[i]``) and its columns by
    ``col_offsets[i]``; its entries occupy
    ``eq_entry_indptr[i]:eq_entry_indptr[i + 1]`` (resp. ``ub_entry_indptr``),
    so both the per-item split and the whole-ensemble block matrix are
    zero-copy views of the same arrays.
    """

    triplets: tuple[CollectiveLPTriplets, ...]
    eq_rows: np.ndarray
    eq_cols: np.ndarray
    eq_vals: np.ndarray
    eq_entry_indptr: np.ndarray
    eq_row_offsets: np.ndarray
    ub_rows: np.ndarray
    ub_cols: np.ndarray
    ub_vals: np.ndarray
    ub_entry_indptr: np.ndarray
    ub_row_offsets: np.ndarray
    col_offsets: np.ndarray

    @property
    def num_items(self) -> int:
        """Number of stacked LPs."""
        return len(self.triplets)

    @property
    def nbytes(self) -> int:
        """Bytes held by the concatenated COO buffers."""
        return sum(
            a.nbytes
            for a in (
                self.eq_rows,
                self.eq_cols,
                self.eq_vals,
                self.eq_entry_indptr,
                self.eq_row_offsets,
                self.ub_rows,
                self.ub_cols,
                self.ub_vals,
                self.ub_entry_indptr,
                self.ub_row_offsets,
                self.col_offsets,
            )
        )

    def data_for(self, item: int) -> SteadyStateLPData:
        """Solver-ready matrices of one item, split back from the buffers.

        Identical (same sparsity, same entries, same bounds) to calling
        :func:`~repro.lp.formulation.build_collective_lp` on the item alone.
        """
        return self.triplets[item].data()

    def block_matrices(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """``(A_eq, A_ub)`` of the whole ensemble as block-diagonal systems."""
        num_cols = int(self.col_offsets[-1])
        a_eq = sparse.coo_matrix(
            (self.eq_vals, (self.eq_rows, self.eq_cols)),
            shape=(int(self.eq_row_offsets[-1]), num_cols),
        ).tocsr()
        a_ub = sparse.coo_matrix(
            (self.ub_vals, (self.ub_rows, self.ub_cols)),
            shape=(int(self.ub_row_offsets[-1]), num_cols),
        ).tocsr()
        return a_eq, a_ub

    def __repr__(self) -> str:
        return (
            f"LPBatch(items={self.num_items}, "
            f"eq_entries={len(self.eq_vals)}, ub_entries={len(self.ub_vals)})"
        )


def batch_lp_assembly(
    problems: Sequence[tuple[Platform, CollectiveSpec]],
    size: float | None = None,
) -> LPBatch:
    """Assemble the steady-state LPs of every ``(platform, spec)`` pair.

    One concatenated COO pass over the ensemble; raises
    :class:`ValueError` on an empty ensemble and propagates the usual
    :class:`~repro.exceptions.LPError` for malformed specs.
    """
    if not problems:
        raise ValueError("batch_lp_assembly needs at least one (platform, spec) pair")
    triplets = tuple(
        collective_lp_triplets(platform, spec, size) for platform, spec in problems
    )

    eq_entries = np.asarray([len(t.eq_vals) for t in triplets], dtype=np.int64)
    ub_entries = np.asarray([len(t.ub_vals) for t in triplets], dtype=np.int64)
    eq_entry_indptr = np.zeros(len(triplets) + 1, dtype=np.int64)
    np.cumsum(eq_entries, out=eq_entry_indptr[1:])
    ub_entry_indptr = np.zeros(len(triplets) + 1, dtype=np.int64)
    np.cumsum(ub_entries, out=ub_entry_indptr[1:])

    def offsets(counts: list[int]) -> np.ndarray:
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=out[1:])
        return out

    eq_row_offsets = offsets([t.num_eq_rows for t in triplets])
    ub_row_offsets = offsets([t.num_ub_rows for t in triplets])
    col_offsets = offsets([t.index.num_variables for t in triplets])

    eq_rows = np.concatenate(
        [t.eq_rows + off for t, off in zip(triplets, eq_row_offsets[:-1].tolist())]
    )
    eq_cols = np.concatenate(
        [t.eq_cols + off for t, off in zip(triplets, col_offsets[:-1].tolist())]
    )
    ub_rows = np.concatenate(
        [t.ub_rows + off for t, off in zip(triplets, ub_row_offsets[:-1].tolist())]
    )
    ub_cols = np.concatenate(
        [t.ub_cols + off for t, off in zip(triplets, col_offsets[:-1].tolist())]
    )

    return LPBatch(
        triplets=triplets,
        eq_rows=eq_rows,
        eq_cols=eq_cols,
        eq_vals=np.concatenate([t.eq_vals for t in triplets]),
        eq_entry_indptr=eq_entry_indptr,
        eq_row_offsets=eq_row_offsets,
        ub_rows=ub_rows,
        ub_cols=ub_cols,
        ub_vals=np.concatenate([t.ub_vals for t in triplets]),
        ub_entry_indptr=ub_entry_indptr,
        ub_row_offsets=ub_row_offsets,
        col_offsets=col_offsets,
    )
