"""Incremental spanning oracle for the edge-pruning heuristics.

The pruning heuristics' inner question — *"does every node stay reachable
from the source if I delete this edge?"* — is answered by the reference
implementations with :func:`repro.utils.graph_utils.edge_removal_keeps_spanning`,
which re-materialises ``set(nodes)`` and runs a full forward traversal of
name-keyed sets on every single candidate.  :class:`SpanningOracle` compiles
the question down to integers once per heuristic run and exploits a
structural fact to answer most queries in a handful of steps:

    On a graph where every node is reachable from the source, deleting the
    edge ``(u, v)`` keeps the graph spanning **iff** ``v`` itself remains
    reachable.  (Any other node's simple path through ``(u, v)`` visits
    ``v`` exactly once; the suffix after ``v`` cannot contain an edge that
    *ends* at ``v``, so it survives the deletion and can be grafted onto
    any surviving source→``v`` path.)

Each query therefore runs a *reverse* traversal from ``v`` over the alive
in-edges, terminating as soon as the source is found — typically after a
few pops on the well-connected platforms the heuristics prune — instead of
a full forward sweep of the graph.  Deleted edges flip one slot in an
``alive`` byte array, and an epoch-stamped ``seen`` array avoids per-query
re-initialisation.

The oracle returns exactly the same booleans as the reference helper (the
equivalence above is an *iff*, asserted by the property tests), so the
pruned edge sequences — and the resulting trees — are identical.

Precondition: every node is currently reachable from the source.  The
pruning heuristics maintain this invariant by construction (they start from
a validated broadcast-feasible platform and only ever delete edges the
oracle approved).
"""

from __future__ import annotations

from ..platform.compiled import CompiledPlatform

__all__ = ["SpanningOracle", "heaviest_first_candidates"]


def heaviest_first_candidates(view: CompiledPlatform, weights) -> list[list[int]]:
    """Per-node outgoing edge ids by non-increasing ``(weight, str(edge))``.

    The shared candidate order of the degree-pruning heuristics
    (Algorithm 2 and its multi-port variant): the weights never change
    during a prune, so the order is computed once and filtered for liveness
    while scanning.  ``weights`` is indexable by edge id.
    """
    edges = view.edge_list
    return [
        sorted(
            view.out_edges_of(i).tolist(),
            key=lambda e: (weights[e], str(edges[e])),
            reverse=True,
        )
        for i in range(view.num_nodes)
    ]


class SpanningOracle:
    """Answers edge-removal reachability queries on a shrinking edge set.

    With ``target_indices`` the question generalises from *"does every node
    stay reachable?"* to *"does every target stay reachable?"* (the
    multicast / Steiner pruning criterion): when the fast reverse traversal
    finds the deleted edge's head disconnected, a forward sweep from the
    source decides whether any *target* actually depended on it — non-target
    relays are allowed to fall off.
    """

    def __init__(
        self,
        view: CompiledPlatform,
        source_index: int,
        target_indices: "list[int] | None" = None,
    ) -> None:
        self._source = source_index
        self._edge_targets = view.edge_targets.tolist()
        self._edge_sources = view.edge_sources.tolist()
        sources = self._edge_sources
        predecessors: list[list[tuple[int, int]]] = [[] for _ in range(view.num_nodes)]
        successors: list[list[tuple[int, int]]] = [[] for _ in range(view.num_nodes)]
        for edge_id, (u, v) in enumerate(zip(sources, self._edge_targets)):
            predecessors[v].append((edge_id, u))
            successors[u].append((edge_id, v))
        self._predecessors = predecessors
        self._successors = successors
        self._alive = bytearray(b"\x01" * view.num_edges)
        self._seen = [0] * view.num_nodes
        self._epoch = 0
        self._targets: set[int] | None = (
            None
            if target_indices is None
            else {int(t) for t in target_indices if int(t) != source_index}
        )

    def is_alive(self, edge_id: int) -> bool:
        """Whether ``edge_id`` is still part of the graph."""
        return bool(self._alive[edge_id])

    def remove(self, edge_id: int) -> None:
        """Delete ``edge_id`` from the graph."""
        self._alive[edge_id] = 0

    def alive_edge_ids(self) -> list[int]:
        """Ids of the surviving edges, ascending (= edge insertion order)."""
        return [e for e, flag in enumerate(self._alive) if flag]

    def keeps_spanning(self, edge_id: int) -> bool:
        """Whether deleting ``edge_id`` keeps every node source-reachable.

        In target mode (``target_indices`` given) the criterion is "every
        *target* stays reachable": when the edge's head does become
        disconnected, the slower forward fallback decides whether a target
        was among the casualties.
        """
        source = self._source
        target = self._edge_targets[edge_id]
        if target == source:
            return True
        alive = self._alive
        alive[edge_id] = 0
        seen = self._seen
        self._epoch += 1
        epoch = self._epoch
        seen[target] = epoch
        predecessors = self._predecessors
        stack = [target]
        found = False
        while stack:
            node = stack.pop()
            for eid, pred in predecessors[node]:
                if alive[eid] and seen[pred] != epoch:
                    if pred == source:
                        found = True
                        stack.clear()
                        break
                    seen[pred] = epoch
                    stack.append(pred)
        if not found and self._targets is not None:
            found = self._targets_reachable_without(edge_id)
        alive[edge_id] = 1
        return found

    def _targets_reachable_without(self, edge_id: int) -> bool:
        """Forward sweep: are all targets reachable with ``edge_id`` dead?

        Only called from :meth:`keeps_spanning`, which has already cleared
        the edge's alive flag.  This is the rare slow path: it runs only
        when the deleted edge genuinely disconnects its head, i.e. when a
        non-target relay region is about to be pruned away.
        """
        targets = self._targets
        assert targets is not None
        remaining = len(targets)
        if remaining == 0:
            return True
        alive = self._alive
        seen = self._seen
        self._epoch += 1
        epoch = self._epoch
        source = self._source
        seen[source] = epoch
        if source in targets:  # pragma: no cover - source filtered in __init__
            remaining -= 1
        successors = self._successors
        stack = [source]
        while stack and remaining:
            node = stack.pop()
            for eid, succ in successors[node]:
                if alive[eid] and seen[succ] != epoch:
                    seen[succ] = epoch
                    if succ in targets:
                        remaining -= 1
                        if not remaining:
                            return True
                    stack.append(succ)
        return remaining == 0
