"""Lazy min-heap frontier for the Prim-like growing heuristics.

``GROWING-MINIMUM-WEIGHTED-OUT-DEGREE-TREE`` and its multi-port variant both
repeat "pick the cheapest edge leaving the current tree" ``p - 1`` times.
The reference implementations rescan every candidate edge per iteration —
``O(V * E)`` overall; this frontier keeps the candidates in a heap keyed by
``(cost, str(edge))`` (the heuristics' exact deterministic tie-break) and
relies on a *lazy increase-key*: the growing metrics only ever increase a
candidate's cost, so a popped entry whose stored cost is stale is simply
re-pushed with its current cost.  The popped entry that survives the check
is the true minimum, making the heap selection identical — edge for edge —
to the full rescan.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Hashable, Iterable

__all__ = ["LazyFrontier"]

Edge = tuple[Hashable, Hashable]


class LazyFrontier:
    """Min-heap of frontier edges with monotonically increasing costs.

    Parameters
    ----------
    cost_of:
        Current cost of a candidate edge; must never decrease between a
        push and the corresponding pop (the lazy invariant).
    """

    def __init__(self, cost_of: Callable[[Edge], float]) -> None:
        self._cost_of = cost_of
        self._heap: list[tuple[float, str, Edge]] = []

    def push(self, edge: Edge) -> None:
        """Add a candidate edge at its current cost."""
        heapq.heappush(self._heap, (self._cost_of(edge), str(edge), edge))

    def push_all(self, edges: Iterable[Edge]) -> None:
        """Add several candidate edges at their current costs."""
        for edge in edges:
            self.push(edge)

    def pop_best(self, in_tree: set[Any]) -> Edge | None:
        """Cheapest edge into a node outside ``in_tree`` (deterministic).

        Entries whose target joined the tree are discarded; entries whose
        stored cost is stale are re-pushed at their current cost.  Returns
        ``None`` when no candidate leaves the tree (the platform is not
        broadcast-feasible — callers raise).
        """
        heap = self._heap
        while heap:
            cost, _, edge = heapq.heappop(heap)
            if edge[1] in in_tree:
                continue
            current = self._cost_of(edge)
            if cost != current:
                heapq.heappush(heap, (current, str(edge), edge))
                continue
            return edge
        return None
