"""Array-backed, frozen view of a :class:`~repro.core.tree.BroadcastTree`.

:class:`~repro.platform.compiled.CompiledPlatform` freezes a *platform* into
integer-indexed arrays; :class:`CompiledTree` does the same for a broadcast
tree on top of that node index:

* ``parents[i]`` — parent node index of node ``i`` (``-1`` for the source),
* ``bfs`` — node indices in the tree's breadth-first order (identical to
  :meth:`BroadcastTree.bfs_order <repro.core.tree.BroadcastTree.bfs_order>`),
* a children CSR (``child_indptr`` + ``child_nodes``) in the tree's
  deterministic child order, and
* the physical route of every logical edge flattened into hop arrays
  (``route_indptr`` over the ``child_nodes`` positions, plus per-hop edge
  ids and transfer times).

The makespan and simulation kernels (:mod:`repro.kernels.makespan`,
:mod:`repro.kernels.simulation`) run their slice-vectorized recurrences
directly over these arrays instead of chasing name-keyed dicts.  Trees cache
their compiled view per message size through
:meth:`BroadcastTree.compiled <repro.core.tree.BroadcastTree.compiled>`;
tree structure is immutable after validation, and a platform mutation
invalidates the view transitively (the platform hands out a fresh
:class:`CompiledPlatform`, which no longer matches the cached entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..platform.compiled import CompiledPlatform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.tree import BroadcastTree

__all__ = ["CompiledTree", "compile_tree"]


@dataclass(frozen=True, eq=False)  # identity semantics: ndarray fields break generated __eq__
class CompiledTree:
    """Immutable integer-indexed snapshot of a broadcast tree.

    Attributes
    ----------
    view:
        The compiled platform the indices refer to.
    source:
        Node index of the broadcast source.
    parents:
        ``parents[i]`` is the parent index of node ``i`` (``-1`` for the
        source).
    bfs:
        Node indices in breadth-first order from the source.
    child_indptr / child_nodes:
        CSR children lists: the children of node ``i`` are
        ``child_nodes[child_indptr[i]:child_indptr[i + 1]]``, in the tree's
        deterministic (string-sorted) child order.
    route_indptr / route_edge_ids:
        Flattened physical routes, aligned with :attr:`child_nodes`: the
        logical edge into ``child_nodes[c]`` is implemented by the platform
        edges ``route_edge_ids[route_indptr[c]:route_indptr[c + 1]]`` in hop
        order (a single entry for plain tree edges).
    """

    view: CompiledPlatform
    source: int
    parents: np.ndarray
    bfs: np.ndarray
    child_indptr: np.ndarray
    child_nodes: np.ndarray
    route_indptr: np.ndarray
    route_edge_ids: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(cls, tree: "BroadcastTree", size: float | None = None) -> "CompiledTree":
        """Compile ``tree`` against its platform's compiled view for ``size``."""
        view = tree.platform.compiled(size)
        index_of = view.node_index
        edge_id = view.edge_id_map
        num_nodes = view.num_nodes

        parents = np.full(num_nodes, -1, dtype=np.int64)
        for child, parent in tree.parents.items():
            parents[index_of[child]] = index_of[parent]

        bfs_names = tree.bfs_order()
        bfs = np.asarray([index_of[name] for name in bfs_names], dtype=np.int64)

        child_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        child_nodes: list[int] = []
        route_indptr: list[int] = [0]
        route_edge_ids: list[int] = []
        for i, name in enumerate(view.node_names):
            for child in tree.children(name):
                child_nodes.append(index_of[child])
                for hop in tree.route(name, child):
                    route_edge_ids.append(edge_id[hop])
                route_indptr.append(len(route_edge_ids))
            child_indptr[i + 1] = len(child_nodes)

        return cls(
            view=view,
            source=index_of[tree.source],
            parents=parents,
            bfs=bfs,
            child_indptr=child_indptr,
            child_nodes=np.asarray(child_nodes, dtype=np.int64),
            route_indptr=np.asarray(route_indptr, dtype=np.int64),
            route_edge_ids=np.asarray(route_edge_ids, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes spanned by the tree."""
        return self.view.num_nodes

    @property
    def nbytes(self) -> int:
        """Bytes held by the tree's own arrays (cache accounting).

        Excludes :attr:`view` — the compiled platform is shared by every
        tree compiled against it and accounted separately
        (:attr:`CompiledPlatform.nbytes <repro.platform.compiled.CompiledPlatform.nbytes>`).
        """
        return sum(
            a.nbytes
            for a in (
                self.parents,
                self.bfs,
                self.child_indptr,
                self.child_nodes,
                self.route_indptr,
                self.route_edge_ids,
            )
        )

    def children_of(self, index: int) -> np.ndarray:
        """Child indices of node ``index`` (deterministic child order)."""
        return self.child_nodes[self.child_indptr[index] : self.child_indptr[index + 1]]

    def child_slots_of(self, index: int) -> np.ndarray:
        """Positions in :attr:`child_nodes` owned by node ``index``."""
        return np.arange(
            self.child_indptr[index], self.child_indptr[index + 1], dtype=np.int64
        )

    def route_of(self, slot: int) -> np.ndarray:
        """Hop edge ids of the logical edge into ``child_nodes[slot]``."""
        return self.route_edge_ids[self.route_indptr[slot] : self.route_indptr[slot + 1]]

    @cached_property
    def route_lengths(self) -> np.ndarray:
        """Number of physical hops of every logical edge (per child slot)."""
        return np.diff(self.route_indptr)

    @cached_property
    def is_direct(self) -> bool:
        """True when every logical edge is a single physical hop."""
        return bool((self.route_lengths == 1).all()) if len(self.route_lengths) else True

    @cached_property
    def first_hop_edge_ids(self) -> np.ndarray:
        """Edge id of the first physical hop of every logical edge (per slot)."""
        return self.route_edge_ids[self.route_indptr[:-1]]

    def __repr__(self) -> str:
        return (
            f"CompiledTree(nodes={self.num_nodes}, source={self.source}, "
            f"direct={self.is_direct})"
        )


def compile_tree(tree: "BroadcastTree", size: float | None = None) -> CompiledTree:
    """Module-level alias of :meth:`CompiledTree.from_tree`."""
    return CompiledTree.from_tree(tree, size)
