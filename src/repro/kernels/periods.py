"""Delta evaluation of steady-state node periods for re-parenting moves.

The local-search post-pass evaluates hundreds of candidate moves per
iteration, and the reference implementation pays for each one with a full
:class:`~repro.core.tree.BroadcastTree` construction (re-validating the
whole arborescence) plus a full :func:`~repro.analysis.throughput.tree_throughput`
recompute.  A re-parenting move ``child: old_parent -> new_parent`` on a
*direct* tree only changes three node periods — the old parent loses an
outgoing transfer, the new parent gains one, and the child's incoming edge
changes — so :class:`PeriodTracker` maintains the per-node periods (backed
by the platform's compiled weighted-out-degree data) and re-evaluates just
the affected nodes through the *same*
:meth:`~repro.models.port_models.PortModel.node_period` call the full
analysis makes, with identically ordered transfer lists.  Candidate
throughputs are therefore bit-identical to the reference recompute, and the
greedy search visits and accepts exactly the same move sequence.
"""

from __future__ import annotations

from typing import Any

from ..models.port_models import PortModel

__all__ = ["PeriodTracker"]

NodeName = Any


class PeriodTracker:
    """Incremental per-node periods of a direct broadcast tree.

    Parameters
    ----------
    tree:
        The (direct) tree to track; its structure is copied, the tree object
        itself is never mutated.
    model:
        Port model used for the period arithmetic.
    size:
        Message-slice size forwarded to the model.
    """

    def __init__(self, tree, model: PortModel, size: float | None = None) -> None:
        if not tree.is_direct:
            raise ValueError("PeriodTracker requires a direct (non-routed) tree")
        self._platform = tree.platform
        self._model = model
        self._size = size
        self._weights = self._platform.compiled(size).edge_weight_map
        self.source: NodeName = tree.source
        self.parents: dict[NodeName, NodeName] = tree.to_parent_dict()
        self.children: dict[NodeName, list[NodeName]] = {
            node: tree.children(node) for node in tree.nodes
        }
        self.periods: dict[NodeName, float] = {
            node: self._node_period(node, self.children[node], self.parents.get(node))
            for node in tree.nodes
        }

    # ------------------------------------------------------------------ #
    # Period arithmetic (identical to tree_throughput's per-node call)
    # ------------------------------------------------------------------ #
    def _node_period(
        self, node: NodeName, children: list[NodeName], parent: NodeName | None
    ) -> float:
        """Period of ``node`` given its children and parent.

        Transfer lists are ordered by ``str((u, v))`` exactly like
        :meth:`BroadcastTree.transfer_tables`, so the resulting floats match
        a full recompute bit for bit.
        """
        weights = self._weights
        outgoing = [
            (child, weights[(node, child)], 1)
            for child in sorted(children, key=lambda c: str((node, c)))
        ]
        incoming = (
            [] if parent is None else [(parent, weights[(parent, node)], 1)]
        )
        return self._model.node_period(
            self._platform, node, outgoing, incoming, self._size
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def bottleneck(self) -> NodeName:
        """Node of maximum period (ties broken on ``str``, like the report)."""
        return max(self.periods, key=lambda node: (self.periods[node], str(node)))

    def throughput(self) -> float:
        """Tree throughput implied by the tracked periods."""
        period = self.periods[self.bottleneck()]
        return float("inf") if period == 0 else 1.0 / period

    def subtree_nodes(self, node: NodeName) -> set[NodeName]:
        """All nodes of the subtree rooted at ``node`` (including it)."""
        result: set[NodeName] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(self.children[current])
        return result

    # ------------------------------------------------------------------ #
    # Move evaluation / application
    # ------------------------------------------------------------------ #
    def evaluate_move(self, child: NodeName, new_parent: NodeName) -> tuple[float, dict]:
        """Throughput of the tree after re-parenting ``child``, without mutating.

        Returns ``(throughput, affected_periods)`` where ``affected_periods``
        can be handed to :meth:`apply_move` to commit the move cheaply.
        """
        old_parent = self.parents[child]
        affected = {
            old_parent: self._node_period(
                old_parent,
                [c for c in self.children[old_parent] if c != child],
                self.parents.get(old_parent),
            ),
            new_parent: self._node_period(
                new_parent,
                self.children[new_parent] + [child],
                self.parents.get(new_parent),
            ),
        }
        affected[child] = self._node_period(
            child, self.children[child], new_parent
        )
        period = self._max_period_excluding(affected)
        for value in affected.values():
            if value > period:
                period = value
        throughput = float("inf") if period == 0 else 1.0 / period
        return throughput, affected

    def _max_period_excluding(self, excluded: dict[NodeName, float]) -> float:
        """Largest tracked period over the nodes *not* in ``excluded``."""
        best = 0.0
        for node, period in self.periods.items():
            if period > best and node not in excluded:
                best = period
        return best

    def apply_move(
        self, child: NodeName, new_parent: NodeName, affected_periods: dict
    ) -> None:
        """Commit a move previously scored by :meth:`evaluate_move`."""
        old_parent = self.parents[child]
        self.children[old_parent] = [c for c in self.children[old_parent] if c != child]
        self.children[new_parent] = sorted(
            self.children[new_parent] + [child], key=str
        )
        self.parents[child] = new_parent
        self.periods.update(affected_periods)
