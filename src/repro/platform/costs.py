"""Affine communication-cost model.

Section 2.1 of the paper describes the general framework used throughout:
sending a message of size ``L`` from ``P_u`` to ``P_v`` over the link
``e_{u,v}`` involves three (possibly different) affine occupation times:

* the link occupation       ``T_{u,v}(L)   = alpha_{u,v} + L * beta_{u,v}``,
* the sender occupation     ``send_{u,v}(L) = s0_{u,v}   + L * s1_{u,v}``,
* the receiver occupation   ``recv_{u,v}(L) = r0_{u,v}   + L * r1_{u,v}``,

with ``send <= T`` and ``recv <= T`` for every message size.  The one-port
model collapses the three functions (the sender and the receiver are blocked
for the whole transfer); multi-port models keep them distinct so a sender
may overlap the tail of one transfer with the head of the next.

:class:`AffineCost` is a small immutable value object implementing one such
affine function, and :class:`LinkCostModel` bundles the three functions of a
link with the consistency checks above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..exceptions import PlatformError

__all__ = ["AffineCost", "LinkCostModel"]


@dataclass(frozen=True, order=True)
class AffineCost:
    """An affine cost function ``cost(L) = startup + L * per_unit``.

    Parameters
    ----------
    startup:
        Latency component, paid once per message regardless of its size
        (``alpha`` in the paper).
    per_unit:
        Inverse-bandwidth component, paid per data unit (``beta``).
    """

    startup: float = 0.0
    per_unit: float = 0.0

    def __post_init__(self) -> None:
        if self.startup < 0:
            raise PlatformError(f"startup must be non-negative, got {self.startup!r}")
        if self.per_unit < 0:
            raise PlatformError(f"per_unit must be non-negative, got {self.per_unit!r}")

    def __call__(self, size: float) -> float:
        """Evaluate the cost for a message of ``size`` data units."""
        if size < 0:
            raise PlatformError(f"message size must be non-negative, got {size!r}")
        return self.startup + size * self.per_unit

    def dominates(self, other: "AffineCost") -> bool:
        """Return ``True`` if this cost is >= ``other`` for every size."""
        return self.startup >= other.startup and self.per_unit >= other.per_unit

    def scaled(self, factor: float) -> "AffineCost":
        """Return a copy with both coefficients multiplied by ``factor``."""
        if factor < 0:
            raise PlatformError(f"scaling factor must be non-negative, got {factor!r}")
        return AffineCost(self.startup * factor, self.per_unit * factor)

    @classmethod
    def constant(cls, value: float) -> "AffineCost":
        """A size-independent cost (useful for fixed-size slice models)."""
        return cls(startup=value, per_unit=0.0)

    @classmethod
    def linear(cls, per_unit: float) -> "AffineCost":
        """A zero-latency, bandwidth-only cost."""
        return cls(startup=0.0, per_unit=per_unit)

    @classmethod
    def from_bandwidth(cls, bandwidth: float, startup: float = 0.0) -> "AffineCost":
        """Build a cost from a link *bandwidth* (data units per time unit)."""
        if bandwidth <= 0:
            raise PlatformError(f"bandwidth must be positive, got {bandwidth!r}")
        return cls(startup=startup, per_unit=1.0 / bandwidth)

    def to_dict(self) -> dict[str, float]:
        """Serialise to a plain dictionary."""
        return {"startup": self.startup, "per_unit": self.per_unit}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AffineCost":
        """Rebuild from :meth:`to_dict` output."""
        return cls(startup=float(data["startup"]), per_unit=float(data["per_unit"]))


@dataclass(frozen=True)
class LinkCostModel:
    """The three affine occupation functions of a single link.

    The defaults implement the one-port convention of Section 2.3: when only
    ``link`` is given, the sender and the receiver are both considered busy
    for the whole link occupation (``send = recv = link``).

    Parameters
    ----------
    link:
        Total link occupation ``T_{u,v}(L)``.
    send:
        Sender occupation ``send_{u,v}(L)``; must never exceed ``link``.
        ``None`` means "equal to ``link``" (one-port convention).
    recv:
        Receiver occupation ``recv_{u,v}(L)``; must never exceed ``link``.
        ``None`` means "equal to ``link``" (one-port convention).
    """

    link: AffineCost
    send: AffineCost | None = None
    recv: AffineCost | None = None

    def __post_init__(self) -> None:
        for label, cost in (("send", self.send), ("recv", self.recv)):
            if cost is None:
                continue
            if not self.link.dominates(cost):
                raise PlatformError(
                    f"{label} occupation {cost} exceeds link occupation "
                    f"{self.link}; the paper requires send/recv <= T for all sizes"
                )

    @property
    def effective_send(self) -> AffineCost:
        """Sender occupation, falling back to the link occupation."""
        return self.send if self.send is not None else self.link

    @property
    def effective_recv(self) -> AffineCost:
        """Receiver occupation, falling back to the link occupation."""
        return self.recv if self.recv is not None else self.link

    def link_time(self, size: float) -> float:
        """``T_{u,v}(size)``."""
        return self.link(size)

    def send_time(self, size: float) -> float:
        """``send_{u,v}(size)``."""
        return self.effective_send(size)

    def recv_time(self, size: float) -> float:
        """``recv_{u,v}(size)``."""
        return self.effective_recv(size)

    def scaled(self, factor: float) -> "LinkCostModel":
        """All three occupations multiplied by ``factor``.

        Scaling ``link``, ``send`` and ``recv`` by the same non-negative
        factor preserves the dominance invariant ``send, recv <= link``, so
        the result is always a valid cost model.  This is how dynamic traces
        model bandwidth drift and congestion: a factor relative to the base
        cost, never an absolute replacement.
        """
        return LinkCostModel(
            link=self.link.scaled(factor),
            send=None if self.send is None else self.send.scaled(factor),
            recv=None if self.recv is None else self.recv.scaled(factor),
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "link": self.link.to_dict(),
            "send": None if self.send is None else self.send.to_dict(),
            "recv": None if self.recv is None else self.recv.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkCostModel":
        """Rebuild from :meth:`to_dict` output."""
        send = data.get("send")
        recv = data.get("recv")
        return cls(
            link=AffineCost.from_dict(data["link"]),
            send=None if send is None else AffineCost.from_dict(send),
            recv=None if recv is None else AffineCost.from_dict(recv),
        )

    @classmethod
    def one_port(cls, transfer_time: float) -> "LinkCostModel":
        """A fixed-size-slice one-port link occupied ``transfer_time`` per slice."""
        return cls(link=AffineCost.constant(transfer_time))

    @classmethod
    def multi_port(
        cls, transfer_time: float, send_time: float, recv_time: float | None = None
    ) -> "LinkCostModel":
        """A fixed-size-slice link with overlapping send/recv occupations."""
        return cls(
            link=AffineCost.constant(transfer_time),
            send=AffineCost.constant(send_time),
            recv=None if recv_time is None else AffineCost.constant(recv_time),
        )
