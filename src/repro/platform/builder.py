"""Fluent builder for :class:`~repro.platform.graph.Platform` instances.

The builder is convenient in examples and tests where a small platform is
described literally.  It performs the same validation as the underlying
:class:`Platform` methods but allows links to be declared before their
endpoints (everything is checked when :meth:`PlatformBuilder.build` runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exceptions import PlatformError
from .graph import Platform
from .link import Link
from .node import ProcessorNode

__all__ = ["PlatformBuilder"]


@dataclass
class _PendingLink:
    source: Any
    target: Any
    transfer_time: float
    send_time: float | None
    recv_time: float | None
    bidirectional: bool
    attributes: dict[str, Any]


@dataclass
class PlatformBuilder:
    """Accumulates nodes and links, then materialises a :class:`Platform`.

    Example
    -------
    >>> platform = (
    ...     PlatformBuilder(name="demo")
    ...     .node("master")
    ...     .nodes("w1", "w2")
    ...     .link("master", "w1", 2.0, bidirectional=True)
    ...     .link("master", "w2", 5.0)
    ...     .link("w1", "w2", 1.0)
    ...     .build()
    ... )
    >>> platform.num_nodes
    3
    """

    name: str = "platform"
    slice_size: float = 1.0
    _nodes: dict[Any, ProcessorNode] = field(default_factory=dict)
    _links: list[_PendingLink] = field(default_factory=list)
    _auto_nodes: bool = True

    # ------------------------------------------------------------------ #
    def node(self, name: Any, **attributes: Any) -> "PlatformBuilder":
        """Declare one processor."""
        self._nodes[name] = ProcessorNode(name=name, **attributes)
        return self

    def nodes(self, *names: Any) -> "PlatformBuilder":
        """Declare several processors with default attributes."""
        for name in names:
            self.node(name)
        return self

    def strict(self) -> "PlatformBuilder":
        """Disable auto-creation of nodes referenced only by links."""
        self._auto_nodes = False
        return self

    def link(
        self,
        source: Any,
        target: Any,
        transfer_time: float,
        *,
        send_time: float | None = None,
        recv_time: float | None = None,
        bidirectional: bool = False,
        **attributes: Any,
    ) -> "PlatformBuilder":
        """Declare a directed (or bidirectional) link with a per-slice time."""
        self._links.append(
            _PendingLink(
                source=source,
                target=target,
                transfer_time=transfer_time,
                send_time=send_time,
                recv_time=recv_time,
                bidirectional=bidirectional,
                attributes=dict(attributes),
            )
        )
        return self

    def fully_connected(
        self, names: list[Any], transfer_time: float, **attributes: Any
    ) -> "PlatformBuilder":
        """Declare a clique over ``names`` with uniform link times."""
        for u in names:
            for v in names:
                if u != v:
                    self.link(u, v, transfer_time, **attributes)
        return self

    # ------------------------------------------------------------------ #
    def build(self) -> Platform:
        """Validate the accumulated description and build the platform."""
        platform = Platform(name=self.name, slice_size=self.slice_size)
        for record in self._nodes.values():
            platform.add_node(record)
        for pending in self._links:
            for endpoint in (pending.source, pending.target):
                if not platform.has_node(endpoint):
                    if not self._auto_nodes:
                        raise PlatformError(
                            f"link references unknown node {endpoint!r} and the "
                            "builder is in strict mode"
                        )
                    platform.add_node(endpoint)
            link = Link.with_transfer_time(
                pending.source,
                pending.target,
                pending.transfer_time,
                send_time=pending.send_time,
                recv_time=pending.recv_time,
                **pending.attributes,
            )
            platform.add_link(link)
            if pending.bidirectional:
                platform.add_link(link.reversed())
        platform.validate()
        return platform
