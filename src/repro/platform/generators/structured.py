"""Structured (regular) platform topologies.

These generators are not part of the paper's evaluation but are invaluable
for tests (their optimal broadcast structures are known analytically), for
examples, and for ablations: stars, rings, 2-D grids, hypercubes and
complete graphs, each with either uniform or randomly heterogeneous link
times.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...exceptions import PlatformError
from ...utils.rng import SeedLike, as_generator, sample_positive_normal
from ..graph import Platform
from ..link import Link
from ..node import ProcessorNode

__all__ = [
    "generate_star_platform",
    "generate_ring_platform",
    "generate_grid_platform",
    "generate_hypercube_platform",
    "generate_complete_platform",
]


def _time_sampler(
    rng: np.random.Generator,
    uniform_time: float | None,
    rate_mean: float,
    rate_deviation: float,
    slice_size_mb: float,
) -> Callable[[], float]:
    """Return a callable producing per-slice link times."""
    if uniform_time is not None:
        if uniform_time <= 0:
            raise PlatformError(f"uniform_time must be positive, got {uniform_time}")
        return lambda: uniform_time
    return lambda: slice_size_mb / float(
        sample_positive_normal(rng, rate_mean, rate_deviation)
    )


def _finalise(platform: Platform, pairs: list[tuple[int, int]], sample: Callable[[], float],
              send_fraction: float) -> Platform:
    """Add bidirectional links for ``pairs`` and stamp multi-port overheads."""
    min_out: dict[int, float] = {}
    for u, v in pairs:
        time = sample()
        platform.add_link(Link.with_transfer_time(u, v, time))
        platform.add_link(Link.with_transfer_time(v, u, time))
        min_out[u] = min(min_out.get(u, float("inf")), time)
        min_out[v] = min(min_out.get(v, float("inf")), time)
    for name in platform.nodes:
        record = platform.node(name)
        platform.add_node(record.with_send_overhead(send_fraction * min_out[name]))
    platform.validate()
    return platform


def _base_platform(name: str, num_nodes: int) -> Platform:
    if num_nodes < 2:
        raise PlatformError(f"need at least 2 nodes, got {num_nodes}")
    platform = Platform(name=name, slice_size=1.0)
    for node in range(num_nodes):
        platform.add_node(ProcessorNode(name=node, attributes={"generator": "structured"}))
    return platform


def generate_star_platform(
    num_nodes: int,
    *,
    uniform_time: float | None = None,
    rate_mean: float = 100.0,
    rate_deviation: float = 20.0,
    slice_size_mb: float = 100.0,
    send_fraction: float = 0.8,
    seed: SeedLike = None,
) -> Platform:
    """A star: node 0 is the hub, nodes ``1..n-1`` are leaves."""
    rng = as_generator(seed)
    platform = _base_platform(f"star-{num_nodes}", num_nodes)
    pairs = [(0, leaf) for leaf in range(1, num_nodes)]
    sample = _time_sampler(rng, uniform_time, rate_mean, rate_deviation, slice_size_mb)
    return _finalise(platform, pairs, sample, send_fraction)


def generate_ring_platform(
    num_nodes: int,
    *,
    uniform_time: float | None = None,
    rate_mean: float = 100.0,
    rate_deviation: float = 20.0,
    slice_size_mb: float = 100.0,
    send_fraction: float = 0.8,
    seed: SeedLike = None,
) -> Platform:
    """A bidirectional ring ``0 - 1 - ... - (n-1) - 0``."""
    rng = as_generator(seed)
    platform = _base_platform(f"ring-{num_nodes}", num_nodes)
    pairs = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    sample = _time_sampler(rng, uniform_time, rate_mean, rate_deviation, slice_size_mb)
    return _finalise(platform, pairs, sample, send_fraction)


def generate_grid_platform(
    rows: int,
    cols: int,
    *,
    uniform_time: float | None = None,
    rate_mean: float = 100.0,
    rate_deviation: float = 20.0,
    slice_size_mb: float = 100.0,
    send_fraction: float = 0.8,
    seed: SeedLike = None,
) -> Platform:
    """A 2-D mesh of ``rows x cols`` processors with 4-neighbour links."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise PlatformError(f"grid must contain at least 2 nodes, got {rows}x{cols}")
    rng = as_generator(seed)
    platform = _base_platform(f"grid-{rows}x{cols}", rows * cols)
    pairs: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                pairs.append((node, node + 1))
            if r + 1 < rows:
                pairs.append((node, node + cols))
    sample = _time_sampler(rng, uniform_time, rate_mean, rate_deviation, slice_size_mb)
    return _finalise(platform, pairs, sample, send_fraction)


def generate_hypercube_platform(
    dimension: int,
    *,
    uniform_time: float | None = None,
    rate_mean: float = 100.0,
    rate_deviation: float = 20.0,
    slice_size_mb: float = 100.0,
    send_fraction: float = 0.8,
    seed: SeedLike = None,
) -> Platform:
    """A ``dimension``-dimensional hypercube (``2**dimension`` nodes)."""
    if dimension < 1:
        raise PlatformError(f"dimension must be >= 1, got {dimension}")
    num_nodes = 2**dimension
    rng = as_generator(seed)
    platform = _base_platform(f"hypercube-{dimension}", num_nodes)
    pairs = [
        (node, node ^ (1 << bit))
        for node in range(num_nodes)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    sample = _time_sampler(rng, uniform_time, rate_mean, rate_deviation, slice_size_mb)
    return _finalise(platform, pairs, sample, send_fraction)


def generate_complete_platform(
    num_nodes: int,
    *,
    uniform_time: float | None = None,
    rate_mean: float = 100.0,
    rate_deviation: float = 20.0,
    slice_size_mb: float = 100.0,
    send_fraction: float = 0.8,
    seed: SeedLike = None,
) -> Platform:
    """A complete graph over ``num_nodes`` processors."""
    rng = as_generator(seed)
    platform = _base_platform(f"complete-{num_nodes}", num_nodes)
    pairs = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    sample = _time_sampler(rng, uniform_time, rate_mean, rate_deviation, slice_size_mb)
    return _finalise(platform, pairs, sample, send_fraction)
