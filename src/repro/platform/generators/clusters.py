"""Cluster-of-clusters platform generator.

A recurring motivation of the paper (and of the related work it cites, e.g.
Sun et al. on clusters of SMPs) is the *hierarchical cluster* scenario: a
few clusters of workstations, fast links inside each cluster, much slower
wide-area links between clusters.  The broadcast tree then has to push the
message across each slow inter-cluster link exactly once and fan it out
locally — exactly the behaviour the topology-aware heuristics discover and
the index-based binomial tree misses.

This generator is used by the ``grid_cluster_broadcast`` example and by the
ablation benchmarks; it is not part of the paper's quantitative evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import PlatformError
from ...utils.rng import SeedLike, as_generator, sample_positive_normal
from ..graph import Platform
from ..link import Link
from ..node import ProcessorNode

__all__ = ["ClusterConfig", "generate_cluster_platform"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the cluster-of-clusters generator.

    Parameters
    ----------
    num_clusters:
        Number of clusters.
    cluster_size:
        Number of processors per cluster (the first one is the gateway).
    intra_time_mean, intra_deviation:
        Gaussian parameters (in time units per slice) of intra-cluster links.
    inter_time_mean, inter_deviation:
        Gaussian parameters of inter-cluster (backbone) links; typically an
        order of magnitude slower than intra-cluster links.
    backbone_complete:
        When true every pair of gateways is connected; otherwise gateways
        form a ring.
    send_fraction:
        Multi-port send-overhead fraction of the fastest outgoing link.
    """

    num_clusters: int = 4
    cluster_size: int = 6
    intra_time_mean: float = 1.0
    intra_deviation: float = 0.2
    inter_time_mean: float = 10.0
    inter_deviation: float = 2.0
    backbone_complete: bool = False
    send_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise PlatformError("num_clusters must be >= 1")
        if self.cluster_size < 1:
            raise PlatformError("cluster_size must be >= 1")
        if self.num_clusters * self.cluster_size < 2:
            raise PlatformError("the platform must contain at least 2 processors")
        for label, value in (
            ("intra_time_mean", self.intra_time_mean),
            ("inter_time_mean", self.inter_time_mean),
        ):
            if value <= 0:
                raise PlatformError(f"{label} must be positive, got {value}")
        if not 0.0 < self.send_fraction <= 1.0:
            raise PlatformError("send_fraction must be in (0, 1]")

    @property
    def total_nodes(self) -> int:
        """Total number of processors produced by this configuration."""
        return self.num_clusters * self.cluster_size


def generate_cluster_platform(
    config: ClusterConfig | None = None,
    *,
    seed: SeedLike = None,
    name: str | None = None,
    **overrides,
) -> Platform:
    """Generate a cluster-of-clusters platform.

    Node names are integers; node ``c * cluster_size`` is the gateway of
    cluster ``c`` and carries ``cluster=c`` metadata, like every member of
    the cluster.
    """
    if config is None:
        config = ClusterConfig(**overrides)
    elif overrides:
        raise PlatformError("pass either an explicit config or keyword overrides, not both")

    rng = as_generator(seed)
    platform = Platform(
        name=name or f"clusters-{config.num_clusters}x{config.cluster_size}",
        slice_size=1.0,
    )

    def sample(mean: float, deviation: float) -> float:
        return float(sample_positive_normal(rng, mean, deviation))

    pending: list[tuple[int, int, float]] = []
    gateways: list[int] = []
    for cluster in range(config.num_clusters):
        base = cluster * config.cluster_size
        members = list(range(base, base + config.cluster_size))
        gateways.append(members[0])
        for member in members:
            platform.add_node(
                ProcessorNode(name=member, cluster=cluster, attributes={"generator": "clusters"})
            )
        # Intra-cluster: complete graph (workstations on a switch).
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                pending.append((u, v, sample(config.intra_time_mean, config.intra_deviation)))

    # Backbone between gateways.
    if config.num_clusters > 1:
        if config.backbone_complete:
            backbone_pairs = [
                (gateways[i], gateways[j])
                for i in range(len(gateways))
                for j in range(i + 1, len(gateways))
            ]
        else:
            backbone_pairs = [
                (gateways[i], gateways[(i + 1) % len(gateways)])
                for i in range(len(gateways))
            ]
            if len(gateways) == 2:
                backbone_pairs = backbone_pairs[:1]
        for u, v in backbone_pairs:
            pending.append((u, v, sample(config.inter_time_mean, config.inter_deviation)))

    min_out: dict[int, float] = {}
    for u, v, time in pending:
        platform.add_link(Link.with_transfer_time(u, v, time))
        platform.add_link(Link.with_transfer_time(v, u, time))
        min_out[u] = min(min_out.get(u, float("inf")), time)
        min_out[v] = min(min_out.get(v, float("inf")), time)

    for node in platform.nodes:
        record = platform.node(node)
        if node in min_out:
            platform.add_node(record.with_send_overhead(config.send_fraction * min_out[node]))

    platform.validate()
    return platform
