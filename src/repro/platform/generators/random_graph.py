"""Random heterogeneous platforms (Table 2 of the paper).

Section 5.1 evaluates the heuristics on randomly generated platforms with

* ``n`` in ``{10, 20, ..., 50}`` nodes,
* density in ``{0.04, 0.08, ..., 0.20}`` (probability that a link exists
  between two nodes),
* per-slice transfer times ``T_{u,v}`` derived from link rates drawn from a
  Gaussian distribution (mean 100 MB/s, deviation 20 MB/s), and
* multi-port send overheads ``send_u = 0.80 * min_w T_{u,w}``.

A broadcast needs every node to be reachable from the source, so a bare
Erdős–Rényi draw at density 0.04 would almost always be unusable.  Like the
original experiments (which only report results on feasible platforms) we
guarantee feasibility constructively: the generator first builds a random
spanning structure over all nodes and then adds random extra links until the
requested density is reached.  The achieved density is therefore
``max(requested, minimum needed for connectivity)`` and is recorded in the
platform attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ...exceptions import PlatformError
from ...utils.rng import SeedLike, as_generator, sample_positive_normal
from ..graph import Platform
from ..link import Link
from ..node import ProcessorNode

__all__ = ["RandomPlatformConfig", "generate_random_platform"]


@dataclass(frozen=True)
class RandomPlatformConfig:
    """Parameters of the random-platform generator (paper Table 2).

    Parameters
    ----------
    num_nodes:
        Number of processors ``p``.
    density:
        Target probability of a (bidirectional) link between two nodes,
        measured as ``undirected links / (p * (p - 1) / 2)``.
    rate_mean, rate_deviation:
        Gaussian parameters of the link rate distribution, in MB/s.
    slice_size_mb:
        Size of one message slice in MB; the per-slice transfer time of a
        link is ``slice_size_mb / rate``.
    symmetric:
        When true (default) the two directions of a link share the same
        transfer time, which models a full-duplex physical link.
    send_fraction:
        Fraction used to derive the multi-port send overhead
        ``send_u = send_fraction * min_w T_{u,w}`` stored on each node.
    """

    num_nodes: int = 20
    density: float = 0.12
    rate_mean: float = 100.0
    rate_deviation: float = 20.0
    slice_size_mb: float = 100.0
    symmetric: bool = True
    send_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise PlatformError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if not 0.0 < self.density <= 1.0:
            raise PlatformError(f"density must be in (0, 1], got {self.density}")
        if self.rate_mean <= 0 or self.rate_deviation < 0:
            raise PlatformError("rate parameters must be positive")
        if self.slice_size_mb <= 0:
            raise PlatformError("slice_size_mb must be positive")
        if not 0.0 < self.send_fraction <= 1.0:
            raise PlatformError(f"send_fraction must be in (0, 1], got {self.send_fraction}")

    @property
    def target_undirected_links(self) -> int:
        """Number of undirected links implied by the requested density."""
        pairs = self.num_nodes * (self.num_nodes - 1) // 2
        wanted = int(round(self.density * pairs))
        # A connected undirected graph needs at least p - 1 links.
        return max(self.num_nodes - 1, min(wanted, pairs))


def _sample_transfer_time(rng: np.random.Generator, config: RandomPlatformConfig) -> float:
    """Draw one per-slice transfer time from the Gaussian rate distribution."""
    rate = sample_positive_normal(rng, config.rate_mean, config.rate_deviation)
    return config.slice_size_mb / float(rate)


def _random_spanning_pairs(
    rng: np.random.Generator, num_nodes: int
) -> list[tuple[int, int]]:
    """A uniformly shuffled random spanning tree over ``range(num_nodes)``.

    Each new node attaches to a uniformly random node already in the tree
    (a random recursive tree), which yields well-mixed degrees without the
    long chains a random permutation path would create.
    """
    order = [int(node) for node in rng.permutation(num_nodes)]
    pairs: list[tuple[int, int]] = []
    for position in range(1, num_nodes):
        anchor = order[int(rng.integers(0, position))]
        pairs.append((anchor, order[position]))
    return pairs


def generate_random_platform(
    num_nodes: int | None = None,
    density: float | None = None,
    *,
    config: RandomPlatformConfig | None = None,
    seed: SeedLike = None,
    name: str | None = None,
    **overrides: Any,
) -> Platform:
    """Generate one random heterogeneous platform.

    Either pass a full :class:`RandomPlatformConfig` through ``config`` or
    give ``num_nodes`` / ``density`` (plus keyword overrides for the other
    fields).  The returned platform

    * has ``num_nodes`` processors named ``0 .. num_nodes - 1``,
    * is broadcast-feasible from every node (the underlying undirected
      structure is connected and every link is bidirectional),
    * carries per-slice transfer times on every directed edge, and
    * stores ``send_overhead`` on every node for the multi-port model.
    """
    if config is None:
        fields: dict[str, Any] = {}
        if num_nodes is not None:
            fields["num_nodes"] = num_nodes
        if density is not None:
            fields["density"] = density
        fields.update(overrides)
        config = RandomPlatformConfig(**fields)
    elif num_nodes is not None or density is not None or overrides:
        raise PlatformError(
            "pass either an explicit config or individual parameters, not both"
        )

    rng = as_generator(seed)
    platform = Platform(
        name=name or f"random-n{config.num_nodes}-d{config.density:.2f}",
        slice_size=1.0,
    )

    # --- choose the undirected link set -------------------------------- #
    nodes = list(range(config.num_nodes))
    chosen: set[tuple[int, int]] = set()
    for u, v in _random_spanning_pairs(rng, config.num_nodes):
        chosen.add((min(u, v), max(u, v)))

    all_pairs = [(u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :]]
    remaining = [pair for pair in all_pairs if pair not in chosen]
    extra_needed = config.target_undirected_links - len(chosen)
    if extra_needed > 0 and remaining:
        picked = rng.choice(len(remaining), size=min(extra_needed, len(remaining)), replace=False)
        for index in np.atleast_1d(picked):
            chosen.add(remaining[int(index)])

    # --- sample link times and build the directed platform -------------- #
    transfer_times: dict[tuple[int, int], float] = {}
    for u, v in sorted(chosen):
        forward = _sample_transfer_time(rng, config)
        backward = forward if config.symmetric else _sample_transfer_time(rng, config)
        transfer_times[(u, v)] = forward
        transfer_times[(v, u)] = backward

    min_out: dict[int, float] = {}
    for (u, _v), time in transfer_times.items():
        min_out[u] = min(min_out.get(u, float("inf")), time)

    for node in nodes:
        platform.add_node(
            ProcessorNode(
                name=node,
                send_overhead=config.send_fraction * min_out[node],
                attributes={"generator": "random"},
            )
        )
    for (u, v), time in transfer_times.items():
        platform.add_link(Link.with_transfer_time(u, v, time, generator="random"))

    platform.validate()
    return platform
