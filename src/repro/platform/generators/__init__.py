"""Platform generators: random (paper Table 2), Tiers-like, structured, clusters."""

from .clusters import ClusterConfig, generate_cluster_platform
from .random_graph import RandomPlatformConfig, generate_random_platform
from .structured import (
    generate_complete_platform,
    generate_grid_platform,
    generate_hypercube_platform,
    generate_ring_platform,
    generate_star_platform,
)
from .tiers import TIERS_PRESETS, TiersConfig, generate_tiers_platform

__all__ = [
    "ClusterConfig",
    "generate_cluster_platform",
    "RandomPlatformConfig",
    "generate_random_platform",
    "generate_complete_platform",
    "generate_grid_platform",
    "generate_hypercube_platform",
    "generate_ring_platform",
    "generate_star_platform",
    "TIERS_PRESETS",
    "TiersConfig",
    "generate_tiers_platform",
]
