"""Tiers-like hierarchical topology generator.

The paper's "realistic" platforms are produced by Tiers, the hierarchical
Internet-topology generator of Calvert, Doar and Zegura [19]: 100 platforms
with 30 nodes and 100 platforms with 65 nodes, with densities between 0.05
and 0.15, and the same Gaussian distribution of link transfer times as the
random platforms.

Tiers itself is a C program that is not redistributable here, so this module
implements the same *construction idea* from scratch (this substitution is
documented in DESIGN.md):

* a **WAN** core: a small random tree of core routers plus a configurable
  number of redundant core links;
* several **MAN** networks, each attached to one WAN node, again a small
  tree plus optional redundancy;
* several **LAN** networks per MAN, each a star (hosts around a gateway)
  with optional extra host-to-host links.

Every physical link is bidirectional (two directed edges with the same
transfer time) and the link times follow the same Gaussian rate model as
:mod:`repro.platform.generators.random_graph`, matching the paper's setup.
The generator exposes node counts and redundancy knobs and provides presets
reproducing the 30- and 65-node ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ...exceptions import PlatformError
from ...utils.rng import SeedLike, as_generator, sample_positive_normal
from ..graph import Platform
from ..link import Link
from ..node import ProcessorNode

__all__ = ["TiersConfig", "generate_tiers_platform", "TIERS_PRESETS"]


@dataclass(frozen=True)
class TiersConfig:
    """Parameters of the Tiers-like hierarchical generator.

    The resulting node count is
    ``num_wan + num_wan * mans_per_wan * man_size
    + num_wan * mans_per_wan * lans_per_man * lan_size``.

    Parameters
    ----------
    num_wan:
        Number of WAN (core) routers.
    mans_per_wan:
        Number of MAN networks attached to each WAN router.
    man_size:
        Number of routers inside each MAN (including its WAN gateway link).
    lans_per_man:
        Number of LAN networks attached to each MAN.
    lan_size:
        Number of hosts in each LAN (including the LAN gateway).
    wan_redundancy, man_redundancy, lan_redundancy:
        Number of extra random intra-level links added on top of the
        spanning structure of each level, controlling the final density.
    rate_mean, rate_deviation, slice_size_mb:
        Gaussian link-rate model, identical to the random-platform setup.
    send_fraction:
        Multi-port ``send_u`` fraction of the fastest outgoing link.
    """

    num_wan: int = 3
    mans_per_wan: int = 1
    man_size: int = 3
    lans_per_man: int = 2
    lan_size: int = 3
    wan_redundancy: int = 1
    man_redundancy: int = 1
    lan_redundancy: int = 0
    rate_mean: float = 100.0
    rate_deviation: float = 20.0
    slice_size_mb: float = 100.0
    send_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.num_wan < 1:
            raise PlatformError("num_wan must be >= 1")
        for label, value in (
            ("mans_per_wan", self.mans_per_wan),
            ("man_size", self.man_size),
            ("lans_per_man", self.lans_per_man),
            ("lan_size", self.lan_size),
        ):
            if value < 0:
                raise PlatformError(f"{label} must be non-negative, got {value}")
        for label, value in (
            ("wan_redundancy", self.wan_redundancy),
            ("man_redundancy", self.man_redundancy),
            ("lan_redundancy", self.lan_redundancy),
        ):
            if value < 0:
                raise PlatformError(f"{label} must be non-negative, got {value}")
        if self.rate_mean <= 0 or self.rate_deviation < 0 or self.slice_size_mb <= 0:
            raise PlatformError("rate / slice parameters must be positive")
        if not 0.0 < self.send_fraction <= 1.0:
            raise PlatformError("send_fraction must be in (0, 1]")

    @property
    def total_nodes(self) -> int:
        """Total number of processors produced by this configuration."""
        mans = self.num_wan * self.mans_per_wan
        lans = mans * self.lans_per_man
        return self.num_wan + mans * self.man_size + lans * self.lan_size


#: Preset configurations approximating the two ensembles used in Table 3.
TIERS_PRESETS: dict[int, TiersConfig] = {
    # 3 WAN + 3 MANs of 3 + 6 LANs of 3 = 3 + 9 + 18 = 30 nodes
    30: TiersConfig(
        num_wan=3,
        mans_per_wan=1,
        man_size=3,
        lans_per_man=2,
        lan_size=3,
        wan_redundancy=1,
        man_redundancy=1,
        lan_redundancy=0,
    ),
    # 5 WAN + 5 MANs of 4 + 10 LANs of 4 = 5 + 20 + 40 = 65 nodes
    # (redundancy tuned so the achieved density lands in the paper's
    # 0.05-0.15 range for 65-node Tiers platforms)
    65: TiersConfig(
        num_wan=5,
        mans_per_wan=1,
        man_size=4,
        lans_per_man=2,
        lan_size=4,
        wan_redundancy=4,
        man_redundancy=3,
        lan_redundancy=3,
    ),
}


class _TiersBuilder:
    """Stateful helper assembling one Tiers-like platform."""

    def __init__(self, config: TiersConfig, rng: np.random.Generator, name: str) -> None:
        self.config = config
        self.rng = rng
        self.platform = Platform(name=name, slice_size=1.0)
        self._next_id = 0
        self._pending_links: list[tuple[int, int, str]] = []

    # ------------------------------------------------------------------ #
    def new_node(self, level: str, cluster: int | None) -> int:
        name = self._next_id
        self._next_id += 1
        self.platform.add_node(
            ProcessorNode(
                name=name,
                level=level,
                cluster=cluster,
                attributes={"generator": "tiers"},
            )
        )
        return name

    def add_link(self, u: int, v: int, level: str) -> None:
        self._pending_links.append((u, v, level))

    def random_tree_links(self, members: list[int], level: str) -> None:
        """Connect ``members`` with a random recursive tree."""
        for position in range(1, len(members)):
            anchor = members[int(self.rng.integers(0, position))]
            self.add_link(anchor, members[position], level)

    def redundancy_links(self, members: list[int], count: int, level: str) -> None:
        """Add up to ``count`` extra random links among ``members``."""
        existing = {(min(u, v), max(u, v)) for u, v, _ in self._pending_links}
        candidates = [
            (u, v)
            for i, u in enumerate(members)
            for v in members[i + 1 :]
            if (min(u, v), max(u, v)) not in existing
        ]
        if not candidates or count <= 0:
            return
        picked = self.rng.choice(len(candidates), size=min(count, len(candidates)), replace=False)
        for index in np.atleast_1d(picked):
            u, v = candidates[int(index)]
            self.add_link(u, v, level)

    # ------------------------------------------------------------------ #
    def sample_time(self) -> float:
        rate = sample_positive_normal(self.rng, self.config.rate_mean, self.config.rate_deviation)
        return self.config.slice_size_mb / float(rate)

    def materialise(self) -> Platform:
        """Sample the link times, stamp multi-port overheads and validate."""
        min_out: dict[int, float] = {}
        for u, v, level in self._pending_links:
            time = self.sample_time()
            self.platform.add_link(Link.with_transfer_time(u, v, time, level=level))
            self.platform.add_link(Link.with_transfer_time(v, u, time, level=level))
            min_out[u] = min(min_out.get(u, float("inf")), time)
            min_out[v] = min(min_out.get(v, float("inf")), time)
        for name in self.platform.nodes:
            record = self.platform.node(name)
            overhead = self.config.send_fraction * min_out[name]
            self.platform.add_node(record.with_send_overhead(overhead))
        self.platform.validate()
        return self.platform


def generate_tiers_platform(
    size: int | None = None,
    *,
    config: TiersConfig | None = None,
    seed: SeedLike = None,
    name: str | None = None,
    **overrides: Any,
) -> Platform:
    """Generate one Tiers-like hierarchical platform.

    ``size`` selects one of the presets (currently 30 or 65 nodes,
    mirroring Table 3 of the paper); alternatively pass a full
    :class:`TiersConfig` or keyword overrides applied on top of the default
    configuration.
    """
    if config is not None and (size is not None or overrides):
        raise PlatformError("pass either an explicit config or a preset size, not both")
    if config is None:
        if size is not None:
            if size not in TIERS_PRESETS:
                raise PlatformError(
                    f"no Tiers preset for size {size}; available: {sorted(TIERS_PRESETS)}"
                )
            config = TIERS_PRESETS[size]
            if overrides:
                config = TiersConfig(**{**config.__dict__, **overrides})
        else:
            config = TiersConfig(**overrides)

    rng = as_generator(seed)
    builder = _TiersBuilder(
        config, rng, name or f"tiers-{config.total_nodes}"
    )

    # WAN core
    wan_nodes = [builder.new_node("wan", cluster=None) for _ in range(config.num_wan)]
    builder.random_tree_links(wan_nodes, "wan")
    builder.redundancy_links(wan_nodes, config.wan_redundancy, "wan")

    # MANs, each hanging off one WAN router
    cluster_id = 0
    man_gateways: list[tuple[int, list[int]]] = []
    for wan in wan_nodes:
        for _ in range(config.mans_per_wan):
            members = [builder.new_node("man", cluster_id) for _ in range(config.man_size)]
            if members:
                builder.random_tree_links(members, "man")
                builder.redundancy_links(members, config.man_redundancy, "man")
                builder.add_link(wan, members[0], "wan-man")
                man_gateways.append((cluster_id, members))
            cluster_id += 1

    # LANs, each hanging off one MAN router
    for _, man_members in man_gateways:
        for _ in range(config.lans_per_man):
            hosts = [builder.new_node("lan", cluster_id) for _ in range(config.lan_size)]
            if hosts:
                gateway = hosts[0]
                for host in hosts[1:]:
                    builder.add_link(gateway, host, "lan")
                builder.redundancy_links(hosts, config.lan_redundancy, "lan")
                attach = man_members[int(rng.integers(0, len(man_members)))]
                builder.add_link(attach, gateway, "man-lan")
            cluster_id += 1

    return builder.materialise()
