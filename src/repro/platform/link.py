"""Directed communication links of a heterogeneous platform.

Links are unidirectional (the paper models bidirectional physical links as
two opposite directed edges) and carry a :class:`~repro.platform.costs.LinkCostModel`
describing the affine occupation times of the link, the sender and the
receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..exceptions import InvalidLinkError
from .costs import AffineCost, LinkCostModel

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """A directed link ``e_{u,v} : P_u -> P_v`` of the platform graph.

    Parameters
    ----------
    source:
        Name of the sending processor ``P_u``.
    target:
        Name of the receiving processor ``P_v``.
    cost:
        Affine cost model of the transfer (link / send / recv occupations).
    attributes:
        Free-form metadata (e.g. the hierarchy level the link belongs to in
        a Tiers-like topology, or the physical bandwidth it was derived
        from).
    """

    source: Any
    target: Any
    cost: LinkCostModel
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise InvalidLinkError(f"self-loop link on node {self.source!r} is not allowed")

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def with_transfer_time(
        cls,
        source: Any,
        target: Any,
        transfer_time: float,
        *,
        send_time: float | None = None,
        recv_time: float | None = None,
        **attributes: Any,
    ) -> "Link":
        """Build a fixed-size-slice link occupied ``transfer_time`` per slice.

        This matches the experimental setting of Section 5 where the edge
        weight is directly the time ``T_{u,v}`` needed to send one message
        slice.  ``send_time``/``recv_time`` optionally set smaller sender /
        receiver occupations for the multi-port model.
        """
        cost = LinkCostModel(
            link=AffineCost.constant(transfer_time),
            send=None if send_time is None else AffineCost.constant(send_time),
            recv=None if recv_time is None else AffineCost.constant(recv_time),
        )
        return cls(source=source, target=target, cost=cost, attributes=dict(attributes))

    @classmethod
    def from_bandwidth(
        cls,
        source: Any,
        target: Any,
        bandwidth: float,
        *,
        startup: float = 0.0,
        **attributes: Any,
    ) -> "Link":
        """Build a link from a bandwidth (data units / time unit) and latency."""
        cost = LinkCostModel(link=AffineCost.from_bandwidth(bandwidth, startup=startup))
        return cls(source=source, target=target, cost=cost, attributes=dict(attributes))

    # ------------------------------------------------------------------ #
    # Occupation times
    # ------------------------------------------------------------------ #
    def transfer_time(self, size: float = 1.0) -> float:
        """Link occupation ``T_{u,v}(size)`` for a message of ``size`` units."""
        return self.cost.link_time(size)

    def send_time(self, size: float = 1.0) -> float:
        """Sender occupation ``send_{u,v}(size)``."""
        return self.cost.send_time(size)

    def recv_time(self, size: float = 1.0) -> float:
        """Receiver occupation ``recv_{u,v}(size)``."""
        return self.cost.recv_time(size)

    # ------------------------------------------------------------------ #
    # Misc helpers
    # ------------------------------------------------------------------ #
    @property
    def endpoints(self) -> tuple[Any, Any]:
        """The ``(source, target)`` pair identifying this directed edge."""
        return (self.source, self.target)

    def reversed(self) -> "Link":
        """Return the opposite directed link with identical costs.

        Useful to turn an undirected physical topology into the directed
        graph the paper works with.
        """
        return replace(self, source=self.target, target=self.source)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the link to a plain dictionary (JSON friendly)."""
        return {
            "source": self.source,
            "target": self.target,
            "cost": self.cost.to_dict(),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Link":
        """Rebuild a link from :meth:`to_dict` output."""
        return cls(
            source=data["source"],
            target=data["target"],
            cost=LinkCostModel.from_dict(data["cost"]),
            attributes=dict(data.get("attributes", {})),
        )
