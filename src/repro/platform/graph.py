"""The :class:`Platform` class: a heterogeneous target platform graph.

A platform is a directed graph ``P = (V, E)`` whose vertices are processors
(:class:`~repro.platform.node.ProcessorNode`) and whose edges are
unidirectional communication links (:class:`~repro.platform.link.Link`)
carrying affine occupation costs.  The graph may contain cycles and multiple
paths; bidirectional physical links are represented by two opposite edges.

The class is a thin, validated layer over :class:`networkx.DiGraph` that

* keeps the full :class:`Link`/:class:`ProcessorNode` objects attached to
  edges and vertices,
* exposes the edge weights ``T_{u,v}`` used by the heuristics (the time to
  transfer one message slice),
* provides the reachability / connectivity primitives the pruning
  heuristics rely on, and
* offers copy / sub-graph / serialization utilities for the experiment
  harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Iterator, Mapping

import networkx as nx

from ..exceptions import DisconnectedPlatformError, InvalidLinkError, PlatformError
from .compiled import CompiledPlatform
from .costs import LinkCostModel
from .link import Link
from .node import ProcessorNode

__all__ = ["Platform"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class Platform:
    """A heterogeneous platform graph.

    Parameters
    ----------
    name:
        Human-readable identifier, used in reports and benchmark output.
    slice_size:
        Default message-slice size ``L`` used when computing edge weights.
        The paper's experiments weight each edge directly with ``T_{u,v}``
        (the time to transfer one slice), which corresponds to
        ``slice_size=1.0`` together with
        :meth:`Link.with_transfer_time <repro.platform.link.Link.with_transfer_time>`.
    """

    def __init__(self, name: str = "platform", slice_size: float = 1.0) -> None:
        if slice_size <= 0:
            raise PlatformError(f"slice_size must be positive, got {slice_size!r}")
        self.name = name
        self.slice_size = float(slice_size)
        self._graph: nx.DiGraph = nx.DiGraph()
        # Compiled-view cache, keyed by message size; cleared on mutation.
        self._compiled_cache: dict[float, CompiledPlatform] = {}
        # Cached reversed view (see :meth:`reversed`); invalidated together
        # with the compiled cache on any mutation.  ``_reverse_parent`` is
        # the back-pointer a cached view keeps so that mutating the *view*
        # also detaches it from its parent's cache.
        self._reversed_cache: "Platform | None" = None
        self._reverse_parent: "Platform | None" = None
        # Bumped on every mutation; lets value-insensitive caches (the LP
        # solution cache, Job key memoization) detect that an instance they
        # hold by identity no longer describes the same platform.
        self._mutation_epoch: int = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: ProcessorNode | NodeName, **attributes: Any) -> ProcessorNode:
        """Add a processor to the platform and return its record.

        ``node`` may be a pre-built :class:`ProcessorNode` or any hashable
        name, in which case a default record is created with the keyword
        arguments forwarded to :class:`ProcessorNode`.
        Adding an existing node replaces its record.
        """
        if not isinstance(node, ProcessorNode):
            node = ProcessorNode(name=node, **attributes)
        elif attributes:
            raise PlatformError(
                "cannot pass extra attributes together with a ProcessorNode instance"
            )
        self._graph.add_node(node.name, record=node)
        self._invalidate_caches()
        return node

    def add_link(self, link: Link) -> Link:
        """Add a directed link; both endpoints must already exist."""
        if not self.has_node(link.source):
            raise InvalidLinkError(
                f"link source {link.source!r} is not a node of platform {self.name!r}"
            )
        if not self.has_node(link.target):
            raise InvalidLinkError(
                f"link target {link.target!r} is not a node of platform {self.name!r}"
            )
        self._graph.add_edge(link.source, link.target, record=link)
        self._invalidate_caches()
        return link

    def connect(
        self,
        source: NodeName,
        target: NodeName,
        transfer_time: float,
        *,
        send_time: float | None = None,
        recv_time: float | None = None,
        bidirectional: bool = False,
        **attributes: Any,
    ) -> Link:
        """Convenience wrapper adding a fixed-slice-time link.

        When ``bidirectional`` is true the opposite link (with identical
        costs) is added as well; the forward link is returned.
        """
        link = Link.with_transfer_time(
            source,
            target,
            transfer_time,
            send_time=send_time,
            recv_time=recv_time,
            **attributes,
        )
        self.add_link(link)
        if bidirectional:
            self.add_link(link.reversed())
        return link

    def remove_link(self, source: NodeName, target: NodeName) -> None:
        """Remove a directed link from the platform."""
        if not self._graph.has_edge(source, target):
            raise InvalidLinkError(f"no link {source!r} -> {target!r} in {self.name!r}")
        self._graph.remove_edge(source, target)
        self._invalidate_caches()

    def update_link_costs(
        self, updates: Mapping[Edge, LinkCostModel]
    ) -> int:
        """Replace the cost models of many links in one mutation.

        Trace replay applies a whole window of bandwidth events at once;
        paying one compiled-cache rebuild per *link* would make the epoch
        cost quadratic in the event rate.  This entry point validates every
        update first (unknown edges and non-``LinkCostModel`` values raise
        before anything is touched), swaps the frozen link records in place
        and invalidates the derived views **exactly once**: the observable
        contract is ``mutation_epoch`` delta 1 per non-empty batch, 0 for an
        empty one.

        Returns the number of links updated.
        """
        return self.batch_mutate(costs=updates)

    def batch_mutate(
        self,
        *,
        costs: "Mapping[Edge, LinkCostModel] | None" = None,
        remove: Iterable[Edge] = (),
        add: Iterable[Link] = (),
    ) -> int:
        """Apply link removals, additions and cost updates as one mutation.

        The general form behind :meth:`update_link_costs`, used by trace
        replay to fold a window's churn (link removals / re-additions) and
        bandwidth events into a single ``_invalidate_caches`` call.
        Operations are validated up front and applied in the order
        ``remove``, ``add``, ``costs`` — so a cost update may target a link
        added in the same batch.  Returns the number of operations applied;
        an empty batch leaves :attr:`mutation_epoch` untouched.
        """
        costs = {} if costs is None else dict(costs)
        remove = list(remove)
        add = list(add)
        present = set(self._graph.edges)
        for u, v in remove:
            if (u, v) not in present:
                raise InvalidLinkError(f"no link {u!r} -> {v!r} in {self.name!r}")
            present.discard((u, v))
        for link in add:
            if not isinstance(link, Link):
                raise InvalidLinkError(
                    f"batch additions must be Link records, got {type(link).__name__}"
                )
            for endpoint in (link.source, link.target):
                if not self.has_node(endpoint):
                    raise InvalidLinkError(
                        f"link endpoint {endpoint!r} is not a node of "
                        f"platform {self.name!r}"
                    )
            present.add((link.source, link.target))
        for edge, cost in costs.items():
            if edge not in present:
                u, v = edge
                raise InvalidLinkError(f"no link {u!r} -> {v!r} in {self.name!r}")
            if not isinstance(cost, LinkCostModel):
                raise InvalidLinkError(
                    f"cost update for link {edge!r} must be a LinkCostModel, "
                    f"got {type(cost).__name__}"
                )
        applied = len(remove) + len(add) + len(costs)
        if applied == 0:
            return 0
        for u, v in remove:
            self._graph.remove_edge(u, v)
        for link in add:
            self._graph.add_edge(link.source, link.target, record=link)
        for (u, v), cost in costs.items():
            data = self._graph.edges[u, v]
            data["record"] = replace(data["record"], cost=cost)
        self._invalidate_caches()
        return applied

    def _invalidate_caches(self) -> None:
        """Drop derived views (compiled arrays, reversed platform) on mutation.

        A mutated *reversed view* is no longer the reverse of anything: it
        detaches itself from its parent's cache, so the parent's next
        ``reversed()`` call rebuilds a faithful view instead of handing out
        the mutated one.
        """
        self._compiled_cache.clear()
        self._reversed_cache = None
        self._mutation_epoch += 1
        parent = self._reverse_parent
        if parent is not None:
            if parent._reversed_cache is self:
                parent._reversed_cache = None
            self._reverse_parent = None

    @property
    def mutation_epoch(self) -> int:
        """Counter bumped on every mutation (node/link add or removal).

        Identity-keyed caches pair ``id(platform)`` with this value so a
        platform mutated after being cached is a miss, not a stale hit.
        """
        return self._mutation_epoch

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def has_node(self, name: NodeName) -> bool:
        """Return ``True`` if ``name`` is a processor of this platform."""
        return self._graph.has_node(name)

    def node(self, name: NodeName) -> ProcessorNode:
        """Return the :class:`ProcessorNode` record for ``name``."""
        try:
            return self._graph.nodes[name]["record"]
        except KeyError as exc:
            raise PlatformError(f"unknown node {name!r} in platform {self.name!r}") from exc

    @property
    def nodes(self) -> list[NodeName]:
        """Names of all processors, in insertion order."""
        return list(self._graph.nodes)

    @property
    def num_nodes(self) -> int:
        """Number of processors ``p = |V|``."""
        return self._graph.number_of_nodes()

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def has_link(self, source: NodeName, target: NodeName) -> bool:
        """Return ``True`` if the directed link ``source -> target`` exists."""
        return self._graph.has_edge(source, target)

    def link(self, source: NodeName, target: NodeName) -> Link:
        """Return the :class:`Link` record of the edge ``source -> target``."""
        try:
            return self._graph.edges[source, target]["record"]
        except KeyError as exc:
            raise InvalidLinkError(
                f"no link {source!r} -> {target!r} in platform {self.name!r}"
            ) from exc

    @property
    def links(self) -> list[Link]:
        """All link records, in insertion order."""
        return [data["record"] for _, _, data in self._graph.edges(data=True)]

    @property
    def edges(self) -> list[Edge]:
        """All directed edges as ``(source, target)`` pairs."""
        return list(self._graph.edges)

    @property
    def num_links(self) -> int:
        """Number of directed links ``|E|``."""
        return self._graph.number_of_edges()

    def out_links(self, node: NodeName) -> list[Link]:
        """Links leaving ``node``."""
        return [self.link(u, v) for u, v in self._graph.out_edges(node)]

    def in_links(self, node: NodeName) -> list[Link]:
        """Links entering ``node``."""
        return [self.link(u, v) for u, v in self._graph.in_edges(node)]

    def out_neighbors(self, node: NodeName) -> list[NodeName]:
        """Output neighbourhood ``N_out(node)``."""
        return list(self._graph.successors(node))

    def in_neighbors(self, node: NodeName) -> list[NodeName]:
        """Input neighbourhood ``N_in(node)``."""
        return list(self._graph.predecessors(node))

    def out_degree(self, node: NodeName) -> int:
        """Number of outgoing links of ``node``."""
        return self._graph.out_degree(node)

    def in_degree(self, node: NodeName) -> int:
        """Number of incoming links of ``node``."""
        return self._graph.in_degree(node)

    # ------------------------------------------------------------------ #
    # Weights and costs
    # ------------------------------------------------------------------ #
    def transfer_time(
        self, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """``T_{u,v}``: link occupation for one message of ``size`` units.

        ``size`` defaults to the platform :attr:`slice_size`.
        """
        size = self.slice_size if size is None else size
        return self.link(source, target).transfer_time(size)

    def send_time(
        self, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """Sender occupation for one message of ``size`` units."""
        size = self.slice_size if size is None else size
        return self.link(source, target).send_time(size)

    def recv_time(
        self, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """Receiver occupation for one message of ``size`` units."""
        size = self.slice_size if size is None else size
        return self.link(source, target).recv_time(size)

    #: Upper bound on cached compiled views (distinct message sizes); a
    #: caller sweeping many sizes evicts the oldest instead of growing
    #: without bound.
    _COMPILED_CACHE_LIMIT = 8

    def compiled(self, size: float | None = None) -> CompiledPlatform:
        """Array-backed view of this platform for message ``size``.

        The view is cached per size and rebuilt lazily after any mutation
        (node/link addition or removal), so hot paths can call this freely.
        """
        key = self.slice_size if size is None else float(size)
        view = self._compiled_cache.get(key)
        if view is None:
            view = CompiledPlatform.from_platform(self, key)
            while len(self._compiled_cache) >= self._COMPILED_CACHE_LIMIT:
                self._compiled_cache.pop(next(iter(self._compiled_cache)))
            self._compiled_cache[key] = view
        return view

    def edge_weights(self, size: float | None = None) -> dict[Edge, float]:
        """Map every directed edge to its transfer time ``T_{u,v}``."""
        return dict(self.compiled(size).edge_weight_map)

    def weighted_out_degree(self, node: NodeName, size: float | None = None) -> float:
        """Sum of the transfer times of all links leaving ``node``.

        This is the ``OutDegree(u)`` metric of Algorithm 2 (refined platform
        pruning), evaluated on the *full* platform graph.
        """
        view = self.compiled(size)
        return float(view.weighted_out_degrees[view.index_of(node)])

    def min_out_transfer_time(self, node: NodeName, size: float | None = None) -> float:
        """Smallest transfer time among the links leaving ``node``.

        Used to derive the multi-port send overhead
        ``send_u = fraction * min_w T_{u,w}`` (Section 5.1 of the paper).
        Raises :class:`PlatformError` if the node has no outgoing link.
        """
        view = self.compiled(size)
        index = view.index_of(node)
        if view.out_degrees[index] == 0:
            raise PlatformError(f"node {node!r} has no outgoing link")
        return float(view.min_out_transfer_times[index])

    @property
    def density(self) -> float:
        """Directed edge density ``|E| / (p * (p - 1))``."""
        p = self.num_nodes
        if p < 2:
            return 0.0
        return self.num_links / (p * (p - 1))

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #
    def reachable_from(self, source: NodeName) -> set[NodeName]:
        """Set of nodes reachable from ``source`` (including ``source``)."""
        if not self.has_node(source):
            raise PlatformError(f"unknown node {source!r} in platform {self.name!r}")
        return self.compiled().reachable_from(source)

    def is_broadcast_feasible(self, source: NodeName) -> bool:
        """Whether every node is reachable from ``source``."""
        return len(self.reachable_from(source)) == self.num_nodes

    def require_broadcast_feasible(self, source: NodeName) -> None:
        """Raise :class:`DisconnectedPlatformError` if some node is unreachable.

        The error names every unreachable node (not just how many there
        are), so a failing ensemble instance can be diagnosed from the
        message alone.
        """
        self.require_targets_reachable(source, self.nodes, operation="a broadcast tree")

    def require_targets_reachable(
        self,
        source: NodeName,
        targets: Iterable[NodeName],
        *,
        operation: str = "a collective tree",
    ) -> None:
        """Raise :class:`DisconnectedPlatformError` listing unreachable targets.

        The target-set variant of :meth:`require_broadcast_feasible` used by
        the multicast / scatter paths: only the nodes in ``targets`` have to
        be reachable from ``source`` (relays are discovered on the way).
        """
        reachable = self.reachable_from(source)
        missing = [n for n in targets if n not in reachable]
        if missing:
            raise DisconnectedPlatformError(
                f"platform {self.name!r}: nodes {missing!r} are not reachable from "
                f"source {source!r}; {operation} cannot span them"
            )

    def shortest_path(
        self, source: NodeName, target: NodeName, size: float | None = None
    ) -> list[NodeName]:
        """Shortest path (by transfer time) from ``source`` to ``target``.

        Used by the binomial-tree heuristic when the logical binomial edge
        does not exist in the platform graph.
        """
        weights = self.edge_weights(size)

        def weight(u: NodeName, v: NodeName, _data: Mapping[str, Any]) -> float:
            return weights[(u, v)]

        try:
            return nx.shortest_path(self._graph, source, target, weight=weight)
        except nx.NetworkXNoPath as exc:
            raise DisconnectedPlatformError(
                f"no path from {source!r} to {target!r} in platform {self.name!r}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Views, copies, export
    # ------------------------------------------------------------------ #
    def to_networkx(self, size: float | None = None) -> nx.DiGraph:
        """Export a :class:`networkx.DiGraph` whose edges carry ``weight=T_{u,v}``."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for (u, v), weight in self.edge_weights(size).items():
            graph.add_edge(u, v, weight=weight)
        return graph

    def copy(self, name: str | None = None) -> "Platform":
        """Deep-ish copy (records are immutable, so sharing them is safe)."""
        clone = Platform(name=name or self.name, slice_size=self.slice_size)
        for node_name in self.nodes:
            clone.add_node(self.node(node_name))
        for link in self.links:
            clone.add_link(link)
        return clone

    _REVERSED_SUFFIX = "~reversed"

    def reversed(self, name: str | None = None) -> "Platform":
        """The platform with every directed link flipped (``G^T``).

        Reduce and gather are broadcast and scatter on this view (see
        :mod:`repro.collectives`).  Nodes keep their insertion order; links
        are flipped in insertion order, so reversing twice reproduces the
        original platform exactly (same node/edge order, same costs — the
        default name toggles a ``~reversed`` suffix for the same reason).
        Directional quantities swap sides: each link's send/recv occupations
        and each node's send/recv overheads trade places, because a sender
        on ``G`` is a receiver on ``G^T``.

        The view is cached (and invalidated on mutation), so one workflow
        reversing the platform for its LP, its heuristic and its simulation
        shares a single object — and that object's compiled arrays.
        """
        cache = name is None
        if cache:
            if self._reversed_cache is not None:
                return self._reversed_cache
            if self.name.endswith(self._REVERSED_SUFFIX):
                name = self.name[: -len(self._REVERSED_SUFFIX)]
            else:
                name = f"{self.name}{self._REVERSED_SUFFIX}"
        rev = Platform(name=name, slice_size=self.slice_size)
        for node_name in self.nodes:
            record = self.node(node_name)
            rev.add_node(
                replace(
                    record,
                    send_overhead=record.recv_overhead,
                    recv_overhead=record.send_overhead,
                )
            )
        for link in self.iter_links():
            cost = link.cost
            rev.add_link(
                Link(
                    source=link.target,
                    target=link.source,
                    cost=LinkCostModel(link=cost.link, send=cost.recv, recv=cost.send),
                    attributes=dict(link.attributes),
                )
            )
        if cache:
            self._reversed_cache = rev
            rev._reverse_parent = self
        return rev

    def subgraph_with_links(self, edges: Iterable[Edge], name: str | None = None) -> "Platform":
        """A platform with the same nodes but only the given directed edges."""
        sub = Platform(name=name or f"{self.name}-sub", slice_size=self.slice_size)
        for node_name in self.nodes:
            sub.add_node(self.node(node_name))
        for u, v in edges:
            sub.add_link(self.link(u, v))
        return sub

    def iter_links(self) -> Iterator[Link]:
        """Iterate over link records without materialising a list."""
        for _, _, data in self._graph.edges(data=True):
            yield data["record"]

    # ------------------------------------------------------------------ #
    # Validation and dunder methods
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raise :class:`PlatformError` on failure."""
        if self.num_nodes == 0:
            raise PlatformError(f"platform {self.name!r} has no node")
        for link in self.iter_links():
            if not isinstance(link.cost, LinkCostModel):
                raise InvalidLinkError(
                    f"link {link.source!r}->{link.target!r} has no valid cost model"
                )
            if link.transfer_time(self.slice_size) <= 0:
                raise InvalidLinkError(
                    f"link {link.source!r}->{link.target!r} has non-positive "
                    f"transfer time for slice size {self.slice_size!r}"
                )

    def __contains__(self, name: NodeName) -> bool:
        return self.has_node(name)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"Platform(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links}, density={self.density:.3f})"
        )
