"""Processor (node) description for heterogeneous platforms.

The paper models the platform as a directed graph whose vertices are
processors.  A processor in itself carries very little information (the
heterogeneity lives on the links), but real deployments attach useful
metadata: which cluster / LAN the processor belongs to, which hierarchy
level it occupies in an Internet-like topology (WAN / MAN / LAN), or a
per-node overhead used by the multi-port model.  :class:`ProcessorNode`
captures that metadata in a single immutable record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..exceptions import PlatformError

__all__ = ["ProcessorNode"]


@dataclass(frozen=True)
class ProcessorNode:
    """A processor of the target platform.

    Parameters
    ----------
    name:
        Unique identifier of the processor inside its platform.  Any
        hashable value accepted by :mod:`networkx` works; the generators in
        this package use small integers.
    send_overhead:
        Optional per-node send occupation time (the ``send_u`` term of the
        multi-port model of Section 3.2).  ``None`` means "derive it from
        the outgoing links" (see
        :meth:`repro.models.MultiPortModel.node_send_time`).
    recv_overhead:
        Optional per-node receive occupation time; only used by multi-port
        variants that serialise receives.  ``None`` means "no explicit
        receive overhead".
    level:
        Optional hierarchy level label (``"wan"``, ``"man"``, ``"lan"``)
        attached by the Tiers-like generator.
    cluster:
        Optional cluster identifier attached by cluster generators.
    attributes:
        Free-form extra metadata.
    """

    name: Any
    send_overhead: float | None = None
    recv_overhead: float | None = None
    level: str | None = None
    cluster: int | None = None
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.send_overhead is not None and self.send_overhead < 0:
            raise PlatformError(
                f"send_overhead must be non-negative, got {self.send_overhead!r}"
            )
        if self.recv_overhead is not None and self.recv_overhead < 0:
            raise PlatformError(
                f"recv_overhead must be non-negative, got {self.recv_overhead!r}"
            )

    def with_send_overhead(self, send_overhead: float) -> "ProcessorNode":
        """Return a copy of this node with ``send_overhead`` replaced."""
        return replace(self, send_overhead=send_overhead)

    def with_recv_overhead(self, recv_overhead: float) -> "ProcessorNode":
        """Return a copy of this node with ``recv_overhead`` replaced."""
        return replace(self, recv_overhead=recv_overhead)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the node to a plain dictionary (JSON friendly)."""
        return {
            "name": self.name,
            "send_overhead": self.send_overhead,
            "recv_overhead": self.recv_overhead,
            "level": self.level,
            "cluster": self.cluster,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProcessorNode":
        """Rebuild a node from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            send_overhead=data.get("send_overhead"),
            recv_overhead=data.get("recv_overhead"),
            level=data.get("level"),
            cluster=data.get("cluster"),
            attributes=dict(data.get("attributes", {})),
        )
