"""JSON-friendly (de)serialization of platforms.

The experiment harness stores generated platform ensembles and the examples
load small hand-written topologies; both go through the two functions here.
The format is a plain nested dictionary so it can be dumped with
:mod:`json` or any other structured serializer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import PlatformError
from .graph import Platform
from .link import Link
from .node import ProcessorNode

__all__ = [
    "platform_to_dict",
    "platform_from_dict",
    "save_platform",
    "load_platform",
]

_FORMAT_VERSION = 1


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """Serialise a :class:`Platform` to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": platform.name,
        "slice_size": platform.slice_size,
        "nodes": [platform.node(name).to_dict() for name in platform.nodes],
        "links": [link.to_dict() for link in platform.links],
    }


def platform_from_dict(data: Mapping[str, Any]) -> Platform:
    """Rebuild a :class:`Platform` from :func:`platform_to_dict` output."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise PlatformError(
            f"unsupported platform format version {version!r} "
            f"(this build understands {_FORMAT_VERSION})"
        )
    platform = Platform(
        name=data.get("name", "platform"),
        slice_size=float(data.get("slice_size", 1.0)),
    )
    for node_data in data.get("nodes", []):
        platform.add_node(ProcessorNode.from_dict(node_data))
    for link_data in data.get("links", []):
        platform.add_link(Link.from_dict(link_data))
    platform.validate()
    return platform


def save_platform(platform: Platform, path: str | Path) -> Path:
    """Write a platform to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(platform_to_dict(platform), indent=2, default=str))
    return path


def load_platform(path: str | Path) -> Platform:
    """Read a platform previously written by :func:`save_platform`."""
    data = json.loads(Path(path).read_text())
    return platform_from_dict(data)
