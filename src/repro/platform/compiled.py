"""Array-backed, frozen view of a :class:`~repro.platform.graph.Platform`.

The heuristics, the LP assembly and the steady-state analysis all interrogate
the platform through per-edge ``networkx`` dict lookups, which is convenient
for construction but slow on the hot evaluation path (hundreds of platforms
per ensemble, thousands of edge queries per platform).
:class:`CompiledPlatform` freezes a platform into contiguous arrays:

* stable node ``name <-> index`` maps (insertion order, like
  :attr:`Platform.nodes <repro.platform.graph.Platform.nodes>`),
* edge endpoint index arrays in edge insertion order (matching
  :attr:`Platform.edges <repro.platform.graph.Platform.edges>`),
* a transfer-time vector ``T[e]`` evaluated once for a given slice size,
* CSR-style out-/in-adjacency (``indptr`` + edge-id arrays), and
* per-node overhead vectors for the multi-port model.

A compiled view is *observationally equivalent* to its platform — same
degrees, neighbours, link costs and reachable sets (asserted by property
tests) — but every aggregate query (weighted out-degree, minimum outgoing
transfer time, reachability) is an array operation instead of a Python loop.
Platforms cache their compiled views per slice size and invalidate them on
mutation, so callers can simply ask ``platform.compiled(size)`` whenever they
enter a hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from ..exceptions import InvalidLinkError, PlatformError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import Platform

__all__ = ["CompiledPlatform", "compile_platform"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True, eq=False)  # identity semantics: ndarray fields break generated __eq__/__hash__
class CompiledPlatform:
    """Immutable index-based snapshot of a platform at one slice size.

    Attributes
    ----------
    platform_name:
        Name of the source platform (for error messages and reports).
    slice_size:
        The platform's default slice size.
    size:
        Message size the :attr:`transfer_times` were evaluated at.
    node_names:
        Node names in insertion order; position is the node index.
    node_index:
        Inverse map ``name -> index``.
    edge_sources / edge_targets:
        Endpoint *indices* of every directed edge, in edge insertion order
        (the same order as ``platform.edges``).
    transfer_times:
        ``T[e]``: per-slice transfer time of edge ``e``.
    send_overheads / recv_overheads:
        Explicit per-node overheads of the multi-port model; ``nan`` where
        the node record leaves them unset.
    out_indptr / out_edge_ids:
        CSR out-adjacency: the edge ids leaving node ``i`` are
        ``out_edge_ids[out_indptr[i]:out_indptr[i + 1]]``, in edge insertion
        order.
    in_indptr / in_edge_ids:
        CSR in-adjacency, symmetric to the above.
    """

    platform_name: str
    slice_size: float
    size: float
    node_names: tuple[NodeName, ...]
    node_index: Mapping[NodeName, int]
    edge_sources: np.ndarray
    edge_targets: np.ndarray
    transfer_times: np.ndarray
    send_overheads: np.ndarray
    recv_overheads: np.ndarray
    out_indptr: np.ndarray
    out_edge_ids: np.ndarray
    in_indptr: np.ndarray
    in_edge_ids: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_platform(cls, platform: "Platform", size: float | None = None) -> "CompiledPlatform":
        """Compile ``platform`` for message ``size`` (default: its slice size)."""
        effective_size = platform.slice_size if size is None else float(size)
        node_names = tuple(platform.nodes)
        node_index = {name: i for i, name in enumerate(node_names)}
        num_nodes = len(node_names)

        sources: list[int] = []
        targets: list[int] = []
        times: list[float] = []
        for link in platform.iter_links():
            sources.append(node_index[link.source])
            targets.append(node_index[link.target])
            times.append(link.transfer_time(effective_size))
        edge_sources = np.asarray(sources, dtype=np.int64)
        edge_targets = np.asarray(targets, dtype=np.int64)
        transfer_times = np.asarray(times, dtype=np.float64)

        send_overheads = np.full(num_nodes, np.nan)
        recv_overheads = np.full(num_nodes, np.nan)
        for i, name in enumerate(node_names):
            record = platform.node(name)
            if record.send_overhead is not None:
                send_overheads[i] = record.send_overhead
            if record.recv_overhead is not None:
                recv_overheads[i] = record.recv_overhead

        out_indptr, out_edge_ids = _group_edges(edge_sources, num_nodes)
        in_indptr, in_edge_ids = _group_edges(edge_targets, num_nodes)

        return cls(
            platform_name=platform.name,
            slice_size=platform.slice_size,
            size=effective_size,
            node_names=node_names,
            node_index=node_index,
            edge_sources=edge_sources,
            edge_targets=edge_targets,
            transfer_times=transfer_times,
            send_overheads=send_overheads,
            recv_overheads=recv_overheads,
            out_indptr=out_indptr,
            out_edge_ids=out_edge_ids,
            in_indptr=in_indptr,
            in_edge_ids=in_edge_ids,
        )

    # ------------------------------------------------------------------ #
    # Shared-memory transport
    # ------------------------------------------------------------------ #
    #: The ndarray fields, in a fixed order; the payload a warm-pool parent
    #: publishes into a shared segment and a worker reattaches.
    ARRAY_FIELDS = (
        "edge_sources",
        "edge_targets",
        "transfer_times",
        "send_overheads",
        "recv_overheads",
        "out_indptr",
        "out_edge_ids",
        "in_indptr",
        "in_edge_ids",
    )

    def array_bundle(self) -> dict[str, np.ndarray]:
        """The contiguous arrays by field name (for :func:`repro.shm.pack_arrays`)."""
        return {name: getattr(self, name) for name in self.ARRAY_FIELDS}

    @classmethod
    def from_array_bundle(
        cls,
        arrays: Mapping[str, np.ndarray],
        *,
        platform_name: str,
        slice_size: float,
        size: float,
        node_names: tuple[NodeName, ...],
    ) -> "CompiledPlatform":
        """Rebuild a view around ``arrays`` (typically shared-memory views).

        The arrays are adopted as-is — zero copies — so a view built over a
        shared segment stays backed by it; the scalar sidecar travels in
        the task payload.
        """
        missing = [name for name in cls.ARRAY_FIELDS if name not in arrays]
        if missing:
            raise PlatformError(
                f"array bundle for platform {platform_name!r} is missing "
                f"field(s): {', '.join(missing)}"
            )
        return cls(
            platform_name=platform_name,
            slice_size=float(slice_size),
            size=float(size),
            node_names=tuple(node_names),
            node_index={name: i for i, name in enumerate(node_names)},
            **{name: arrays[name] for name in cls.ARRAY_FIELDS},
        )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of processors ``p``."""
        return len(self.node_names)

    @property
    def num_edges(self) -> int:
        """Number of directed links ``|E|``."""
        return len(self.edge_sources)

    @property
    def nbytes(self) -> int:
        """Bytes held by the snapshot's arrays (cache accounting).

        Counts the ndarray payloads only; the name tuple and index map are
        shared with the source platform and typically negligible.
        """
        return sum(
            a.nbytes
            for a in (
                self.edge_sources,
                self.edge_targets,
                self.transfer_times,
                self.send_overheads,
                self.recv_overheads,
                self.out_indptr,
                self.out_edge_ids,
                self.in_indptr,
                self.in_edge_ids,
            )
        )

    def index_of(self, name: NodeName) -> int:
        """Index of node ``name``; raises :class:`PlatformError` if unknown."""
        try:
            return self.node_index[name]
        except KeyError as exc:
            raise PlatformError(
                f"unknown node {name!r} in platform {self.platform_name!r}"
            ) from exc

    def name_of(self, index: int) -> NodeName:
        """Name of the node at ``index``."""
        return self.node_names[index]

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def out_edges_of(self, index: int) -> np.ndarray:
        """Edge ids leaving node ``index`` (edge insertion order)."""
        return self.out_edge_ids[self.out_indptr[index] : self.out_indptr[index + 1]]

    def in_edges_of(self, index: int) -> np.ndarray:
        """Edge ids entering node ``index`` (edge insertion order)."""
        return self.in_edge_ids[self.in_indptr[index] : self.in_indptr[index + 1]]

    def out_neighbors_of(self, index: int) -> np.ndarray:
        """Indices of the successors of node ``index``."""
        return self.edge_targets[self.out_edges_of(index)]

    def in_neighbors_of(self, index: int) -> np.ndarray:
        """Indices of the predecessors of node ``index``."""
        return self.edge_sources[self.in_edges_of(index)]

    @cached_property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.out_indptr)

    @cached_property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every node."""
        return np.diff(self.in_indptr)

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    @cached_property
    def edge_list(self) -> tuple[Edge, ...]:
        """Edges as ``(source name, target name)`` pairs, insertion order."""
        return tuple(
            (self.node_names[u], self.node_names[v])
            for u, v in zip(self.edge_sources.tolist(), self.edge_targets.tolist())
        )

    @cached_property
    def edge_weight_map(self) -> dict[Edge, float]:
        """``{(u, v): T_{u,v}}`` over all edges, insertion order preserved."""
        return dict(zip(self.edge_list, self.transfer_times.tolist()))

    @cached_property
    def edge_id_map(self) -> dict[Edge, int]:
        """``{(u, v): edge id}`` over all edges (name pairs, insertion order)."""
        return {edge: e for e, edge in enumerate(self.edge_list)}

    @cached_property
    def out_edges_by_node(self) -> dict[NodeName, list[Edge]]:
        """Name-keyed map of the outgoing edges (as name pairs) of every node."""
        edges = self.edge_list
        return {
            name: [edges[e] for e in self.out_edges_of(i).tolist()]
            for i, name in enumerate(self.node_names)
        }

    def transfer_time_between(self, source: NodeName, target: NodeName) -> float:
        """``T_{u,v}`` looked up from the compiled arrays."""
        try:
            return self.edge_weight_map[(source, target)]
        except KeyError as exc:
            raise InvalidLinkError(
                f"no link {source!r} -> {target!r} in platform {self.platform_name!r}"
            ) from exc

    @cached_property
    def weighted_out_degrees(self) -> np.ndarray:
        """Per-node sum of outgoing transfer times (``OutDegree(u)``)."""
        totals = np.zeros(self.num_nodes)
        np.add.at(totals, self.edge_sources, self.transfer_times)
        return totals

    @cached_property
    def min_out_transfer_times(self) -> np.ndarray:
        """Per-node minimum outgoing transfer time (``inf`` for sinks)."""
        minima = np.full(self.num_nodes, np.inf)
        np.minimum.at(minima, self.edge_sources, self.transfer_times)
        return minima

    def node_send_times(self, send_fraction: float) -> np.ndarray:
        """Per-node multi-port send overhead ``send_u``.

        Explicit record overheads win; otherwise
        ``send_u = send_fraction * min_w T_{u,w}`` and pure sinks get 0
        (mirroring :meth:`repro.models.MultiPortModel.node_send_time`).
        """
        derived = np.where(
            self.out_degrees > 0, send_fraction * self.min_out_transfer_times, 0.0
        )
        return np.where(np.isnan(self.send_overheads), derived, self.send_overheads)

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #
    def reachable_mask(self, index: int) -> np.ndarray:
        """Boolean mask of the nodes reachable from node ``index``."""
        seen = np.zeros(self.num_nodes, dtype=bool)
        seen[index] = True
        frontier = np.asarray([index], dtype=np.int64)
        while frontier.size:
            successors = np.concatenate(
                [self.out_neighbors_of(int(i)) for i in frontier]
            )
            fresh = np.unique(successors[~seen[successors]])
            seen[fresh] = True
            frontier = fresh
        return seen

    def reachable_from(self, source: NodeName) -> set[NodeName]:
        """Names of the nodes reachable from ``source`` (including itself)."""
        mask = self.reachable_mask(self.index_of(source))
        return {self.node_names[i] for i in np.flatnonzero(mask)}

    def is_broadcast_feasible(self, source: NodeName) -> bool:
        """Whether every node is reachable from ``source``."""
        return bool(self.reachable_mask(self.index_of(source)).all())

    # ------------------------------------------------------------------ #
    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(source index, target index, transfer time)`` triples."""
        yield from zip(
            self.edge_sources.tolist(),
            self.edge_targets.tolist(),
            self.transfer_times.tolist(),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledPlatform(name={self.platform_name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, size={self.size})"
        )


def _group_edges(endpoint: np.ndarray, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR grouping of edge ids by one endpoint array (stable within a node)."""
    counts = np.bincount(endpoint, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(endpoint, kind="stable").astype(np.int64)
    return indptr, order


def compile_platform(platform: "Platform", size: float | None = None) -> CompiledPlatform:
    """Module-level alias of :meth:`CompiledPlatform.from_platform`."""
    return CompiledPlatform.from_platform(platform, size)
