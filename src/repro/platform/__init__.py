"""Platform model: processors, links, affine costs, graphs and generators."""

from .builder import PlatformBuilder
from .compiled import CompiledPlatform, compile_platform
from .costs import AffineCost, LinkCostModel
from .generators import (
    ClusterConfig,
    RandomPlatformConfig,
    TIERS_PRESETS,
    TiersConfig,
    generate_cluster_platform,
    generate_complete_platform,
    generate_grid_platform,
    generate_hypercube_platform,
    generate_random_platform,
    generate_ring_platform,
    generate_star_platform,
    generate_tiers_platform,
)
from .graph import Platform
from .link import Link
from .node import ProcessorNode
from .serialization import (
    load_platform,
    platform_from_dict,
    platform_to_dict,
    save_platform,
)

__all__ = [
    "AffineCost",
    "CompiledPlatform",
    "compile_platform",
    "LinkCostModel",
    "Link",
    "ProcessorNode",
    "Platform",
    "PlatformBuilder",
    "ClusterConfig",
    "RandomPlatformConfig",
    "TIERS_PRESETS",
    "TiersConfig",
    "generate_cluster_platform",
    "generate_complete_platform",
    "generate_grid_platform",
    "generate_hypercube_platform",
    "generate_random_platform",
    "generate_ring_platform",
    "generate_star_platform",
    "generate_tiers_platform",
    "load_platform",
    "platform_from_dict",
    "platform_to_dict",
    "save_platform",
]
