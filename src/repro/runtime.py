"""Execution and caching infrastructure shared by the facade and the experiments.

This module holds the generic machinery introduced with the evaluation
pipeline (PR 1) in a dependency-free home so that both
:mod:`repro.api` (the :class:`~repro.api.Session` facade) and
:mod:`repro.experiments.pipeline` (the ensemble pipeline) can build on it
without importing each other:

* **Executors** — :class:`SerialExecutor` maps a function over work items
  in-process; :class:`ProcessExecutor` fans the same map out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Both preserve item
  order, so the result stream is identical whichever executor runs it.
* **Supervision** — :class:`SupervisedExecutor` wraps either executor with
  per-task timeouts, bounded retries (exponential backoff, deterministic
  jitter — see :class:`RetryPolicy`) and broken-pool recovery: a crashed
  worker pool is respawned once, and if it breaks again the surviving
  items fall back to in-process execution, with the order and results of
  already-finished items unchanged.  :meth:`SupervisedExecutor.map_outcomes`
  turns permanent failures into structured :class:`TaskFailure` records
  instead of exceptions, which is what ``--keep-going`` campaigns consume.
* **BoundedCache / ByteBudget** — thread-safe LRU mappings with entry and
  byte budgets plus hit/miss/eviction counters, the primitive behind every
  long-lived cache in the library (the session memos, the LP solution
  cache, the :class:`ResultCache` memory tier).  A :class:`ByteBudget` lets
  several caches share one byte ceiling with *global* least-recently-used
  eviction across all of them — the memory-pressure story of the solve
  service (ROADMAP item 1: unbounded caches are a blocker for any
  long-lived process).
* **ResultCache** — a two-level (in-memory + optional on-disk JSON) store
  of *row lists* keyed by caller-provided stable hashes.  The row type is
  pluggable through an ``encode`` / ``decode`` pair (JSON dictionaries by
  default).  Corrupted disk entries are quarantined (renamed to
  ``*.corrupt``) and treated as misses; an unwritable cache directory
  degrades the cache to memory-only with a single warning instead of
  aborting the campaign.  The memory tier can be bounded
  (``max_memory_entries`` / ``max_memory_bytes``): evicted rows fall back
  to the disk tier on the next lookup instead of growing the process
  without limit.
* **stable_key** — the canonical-JSON SHA-256 used to derive those keys.

Error-handling contract: every failure this module raises derives from
:class:`~repro.exceptions.ReproError` (``except ReproError`` catches
timeouts, crashed workers and invalid configurations alike); permanent
task failures surfaced as data use :class:`TaskFailure`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import sys
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol, Sequence, TypeVar

from .exceptions import (
    ExperimentError,
    JobFailedError,
    TaskTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "TaskExecutor",
    "ExecutorBackend",
    "SerialExecutor",
    "ProcessExecutor",
    "SupervisedExecutor",
    "register_backend",
    "available_backends",
    "make_executor",
    "RetryPolicy",
    "TaskFailure",
    "TaskOutcome",
    "BoundedCache",
    "ByteBudget",
    "approx_nbytes",
    "ResultCache",
    "stable_key",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable carrying an active fault-injection plan (see
#: :mod:`repro.faults`).  Environment variables propagate to worker
#: processes, so one ``inject_faults`` context covers the whole tree.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_IDENTITY_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


class _IdentityReprError(Exception):
    """Internal: ``stable_key`` met a value whose repr embeds ``id()``."""

    def __init__(self, value: Any, rendered: str) -> None:
        super().__init__(rendered)
        self.value = value
        self.rendered = rendered


def _repr_default(value: Any) -> str:
    rendered = repr(value)
    if _IDENTITY_REPR.search(rendered):
        raise _IdentityReprError(value, rendered)
    return rendered


def _find_identity_field(payload: Any, path: str = "$") -> tuple[str, str] | None:
    """Locate the first field whose repr embeds a memory address."""
    if isinstance(payload, Mapping):
        for key, value in payload.items():
            found = _find_identity_field(value, f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            found = _find_identity_field(value, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if isinstance(payload, (str, int, float, bool)) or payload is None:
        return None
    rendered = repr(payload)
    if _IDENTITY_REPR.search(rendered):
        return path, rendered
    return None


def stable_key(payload: Any) -> str:
    """SHA-256 of the canonical (sorted-keys) JSON rendering of ``payload``.

    Non-JSON values fall back to ``repr``, so any change in their printed
    form changes the key — exactly the conservative behaviour a cache wants.
    Values whose repr embeds their memory address (the default
    ``<... object at 0x...>`` form) are rejected with an
    :class:`~repro.exceptions.ExperimentError` naming the offending field:
    such keys would never match across processes, silently caching garbage.
    """
    try:
        canonical = json.dumps(payload, sort_keys=True, default=_repr_default)
    except _IdentityReprError as exc:
        found = _find_identity_field(payload)
        where, rendered = found if found is not None else ("$", exc.rendered)
        raise ExperimentError(
            f"stable_key: field {where} has an identity-based repr "
            f"({rendered!r}); its cache key would differ in every process — "
            f"provide a JSON-compatible value or a value-based repr"
        ) from None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class TaskExecutor(Protocol):
    """Order-preserving, lazily-consumable map over a work-item list."""

    jobs: int

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterable[ResultT]: ...


class SerialExecutor:
    """Evaluate work items one after the other in the calling process."""

    name = "serial"
    jobs = 1

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterator[ResultT]:
        # Lazy so callers can report progress as items complete.
        return (function(task) for task in tasks)

    def close(self) -> None:
        """Nothing to release (backend-protocol symmetry)."""


class ProcessExecutor:
    """Fan work items out over a process pool, preserving item order.

    ``function`` and the items must be picklable (module-level functions,
    plain data); the facade ships jobs as JSON strings for this reason.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def close(self) -> None:
        """Nothing persistent to release: each ``map`` owns its pool."""

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterator[ResultT]:
        if not tasks:
            return iter(())
        # Modest chunks amortise pickling without starving short queues.
        chunksize = max(1, len(tasks) // (self.jobs * 8))

        def stream() -> Iterator[ResultT]:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                yield from pool.map(function, tasks, chunksize=chunksize)

        return stream()


# --------------------------------------------------------------------------- #
# Pluggable backends
# --------------------------------------------------------------------------- #
class ExecutorBackend(Protocol):
    """What :func:`make_executor` produces: an executor with a lifecycle.

    Every :class:`TaskExecutor` qualifies once it carries a ``name`` and
    (possibly no-op) ``close``; backends that also expose the pool surface
    (``submit`` / ``abandon`` / ``healthy`` plus a true
    ``supervises_as_pool`` attribute) get per-future supervision from
    :class:`SupervisedExecutor` instead of the in-process fallback.
    """

    name: str
    jobs: int

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterable[ResultT]: ...

    def close(self) -> None: ...


_BACKEND_FACTORIES: dict[str, Callable[[int], Any]] = {}


def register_backend(name: str, factory: Callable[[int], Any]) -> None:
    """Register an executor ``factory`` (``jobs -> executor``) under ``name``.

    Later registrations replace earlier ones, so embedders can override the
    built-ins (``serial`` / ``process`` / ``warm-pool``).
    """
    _BACKEND_FACTORIES[str(name)] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names (the warm pool registers on first use)."""
    _load_pool_backend()
    return tuple(sorted(_BACKEND_FACTORIES))


def _load_pool_backend() -> None:
    """Import :mod:`repro.pool` on demand (it registers ``warm-pool``).

    The import is deferred because :mod:`repro.pool` builds on this module;
    a top-level import here would be a cycle.
    """
    if "warm-pool" not in _BACKEND_FACTORIES:
        from . import pool  # noqa: F401  (import registers the backend)


def make_executor(
    backend: str | None = None,
    jobs: int = 1,
    *,
    warn_single_cpu: bool = True,
) -> Any:
    """Build the executor for ``jobs``-way parallelism.

    With ``backend=None`` (the default used by ``Session(jobs=...)`` and
    the pipeline) the choice is automatic: ``jobs == 1`` runs the batched
    serial path, ``jobs > 1`` the warm worker pool — except on single-CPU
    hosts, where a process pool is pure overhead, so the call warns once
    and falls back to the serial path instead of silently running slower
    than ``jobs=1``.  Naming a backend explicitly always honours it, single
    CPU or not (that is how the fallback itself is tested).
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if backend is None:
        if jobs == 1:
            return SerialExecutor()
        if warn_single_cpu and (os.cpu_count() or 1) < 2:
            warnings.warn(
                f"jobs={jobs} requested but this host has a single CPU; "
                f"a worker pool would only add dispatch overhead — running "
                f"the batched serial path instead (pass an explicit "
                f"backend to force a pool)",
                RuntimeWarning,
                stacklevel=3,
            )
            return SerialExecutor()
        backend = "warm-pool"
    if backend == "warm-pool":
        _load_pool_backend()
    factory = _BACKEND_FACTORIES.get(backend)
    if factory is None:
        known = ", ".join(sorted(_BACKEND_FACTORIES)) or "none"
        raise ExperimentError(
            f"unknown executor backend {backend!r} (registered: {known})"
        )
    return factory(jobs)


register_backend("serial", lambda jobs: SerialExecutor())
register_backend("process", lambda jobs: ProcessExecutor(jobs))


# --------------------------------------------------------------------------- #
# Supervision
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised task may fail before its failure becomes permanent.

    Parameters
    ----------
    retries:
        Additional attempts after the first one (so ``retries=2`` means up
        to three attempts).  ``0`` disables retrying.
    task_timeout:
        Per-attempt wall-clock budget in seconds; ``None`` disables the
        timeout.  Process pools enforce it on the supervisor's wait for the
        task future; in-process execution runs the attempt on a watchdog
        thread (the timed-out attempt is abandoned, not interrupted, so
        supervised functions should be pure).
    backoff / backoff_factor / max_delay:
        Exponential backoff schedule between attempts:
        ``min(backoff * backoff_factor**n, max_delay)`` seconds after the
        ``n``-th failure, scaled by a deterministic jitter in ``[0.5, 1.0)``
        derived from the task label — identical runs sleep identically,
        while concurrent retriers of different tasks spread out.
    """

    retries: int = 2
    task_timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExperimentError(
                f"task_timeout must be positive, got {self.task_timeout!r}"
            )
        if self.backoff < 0 or self.backoff_factor < 1.0 or self.max_delay < 0:
            raise ExperimentError(
                f"invalid backoff schedule: backoff={self.backoff!r}, "
                f"factor={self.backoff_factor!r}, max_delay={self.max_delay!r}"
            )

    @property
    def attempts(self) -> int:
        """Total attempt budget (first attempt plus retries)."""
        return self.retries + 1

    def delay(self, failed_attempts: int, token: str = "") -> float:
        """Seconds to sleep before the next attempt (deterministic jitter)."""
        base = min(
            self.backoff * self.backoff_factor ** max(failed_attempts, 0),
            self.max_delay,
        )
        digest = hashlib.sha256(
            f"{token}:{failed_attempts}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (0.5 + 0.5 * fraction)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (shipped to worker processes)."""
        return {
            "retries": self.retries,
            "task_timeout": self.task_timeout,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "max_delay": self.max_delay,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**{name: data[name] for name in cls.__dataclass_fields__ if name in data})


@dataclass(frozen=True)
class TaskFailure:
    """Structured, serializable record of one permanently-failed task."""

    label: str
    error_type: str
    message: str
    attempts: int

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.label}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskFailure":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            label=str(data.get("label", "")),
            error_type=str(data.get("error_type", "Exception")),
            message=str(data.get("message", "")),
            attempts=int(data.get("attempts", 1)),
        )

    @classmethod
    def from_exception(
        cls, label: str, error: BaseException, attempts: int
    ) -> "TaskFailure":
        """Flatten an exception into a failure record."""
        return cls(
            label=label,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
        )


@dataclass
class TaskOutcome:
    """What happened to one supervised task: a value or a failure record.

    ``exception`` carries the original exception object when the failure
    happened in this process (process-pool failures only have the record).
    """

    index: int
    value: Any = None
    failure: TaskFailure | None = None
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def raise_if_failed(self) -> None:
        """Re-raise the original exception (or a :class:`JobFailedError`)."""
        if self.failure is None:
            return
        if self.exception is not None:
            raise self.exception
        raise JobFailedError(self.failure.summary(), self.failure)


def _call_with_timeout(
    function: Callable[[Any], Any], task: Any, timeout: float
) -> Any:
    """Run ``function(task)`` on a watchdog thread, bounded by ``timeout``.

    A timed-out attempt keeps running on its daemon thread until it returns
    (it cannot be interrupted); its eventual result is discarded.  This is
    the honest best-effort an in-process timeout can offer — supervised
    functions should be pure so an abandoned attempt has no side effects
    beyond warm caches.
    """
    box: list[tuple[str, Any]] = []

    def runner() -> None:
        try:
            box.append(("ok", function(task)))
        except BaseException as exc:  # ferried back to the caller below
            box.append(("err", exc))

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(timeout)
    if not box and thread.is_alive():
        raise TaskTimeoutError(
            f"supervised task exceeded its {timeout:.3g}s timeout"
        )
    kind, payload = box[0]
    if kind == "err":
        raise payload
    return payload


def _run_attempt(
    function: Callable[[Any], Any],
    task: Any,
    label: str,
    attempt: int,
    timeout: float | None,
    fault_hook: bool = True,
) -> Any:
    """One supervised attempt: fault hook, then the call (maybe bounded).

    The fault hook runs *inside* the timed call, so an injected hang
    overruns the watchdog exactly like an organic one would.
    """
    hook_active = bool(fault_hook and os.environ.get(FAULT_PLAN_ENV))

    def attempt_call(item: Any) -> Any:
        if hook_active:
            from .faults import maybe_fail_task  # lazy: zero cost when inactive

            maybe_fail_task(label, attempt)
        return function(item)

    if timeout is None:
        return attempt_call(task)
    return _call_with_timeout(attempt_call, task, timeout)


def _remote_attempt(payload: tuple) -> Any:
    """Worker-side attempt runner; module-level so pools can pickle it.

    The per-attempt timeout is enforced by the supervisor's wait on the
    future, not here; the fault hook *does* run here so crash faults hit
    the worker process (breaking the pool), not the supervisor.
    """
    function, task, label, attempt, fault_hook = payload
    return _run_attempt(function, task, label, attempt, None, fault_hook)


class SupervisedExecutor:
    """Failure-isolating wrapper around any :class:`TaskExecutor`.

    :meth:`map` is a drop-in for the inner executor's ``map`` — same
    order-preserving value stream — except that transient failures are
    retried under the :class:`RetryPolicy` before the (original) exception
    propagates.  :meth:`map_outcomes` never raises: each task yields a
    :class:`TaskOutcome` holding either its value or a permanent
    :class:`TaskFailure` record, which is what ``--keep-going`` campaigns
    and ``solve_many(on_error="collect")`` consume.

    Process pools additionally get broken-pool recovery: the pool is
    respawned once after a worker crash, and a second crash degrades the
    remaining items to in-process execution — finished items keep their
    order and values either way.

    ``labels`` name tasks in failure records and seed the deterministic
    retry jitter (and the fault-injection harness); they default to the
    task position.
    """

    def __init__(
        self,
        inner: TaskExecutor,
        policy: RetryPolicy | None = None,
        *,
        fault_hook: bool = True,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.jobs = getattr(inner, "jobs", 1)
        self._fault_hook = fault_hook

    # ------------------------------------------------------------------ #
    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
        *,
        labels: Sequence[str] | None = None,
    ) -> Iterator[ResultT]:
        """Value stream; permanent failures re-raise their original exception."""

        def stream() -> Iterator[ResultT]:
            for outcome in self.map_outcomes(function, tasks, labels=labels):
                outcome.raise_if_failed()
                yield outcome.value

        return stream()

    def map_outcomes(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
        *,
        labels: Sequence[str] | None = None,
    ) -> Iterator[TaskOutcome]:
        """Outcome stream in task order; never raises for task failures."""
        items = list(tasks)
        if labels is None:
            names = [f"task-{index}" for index in range(len(items))]
        else:
            names = [str(label) for label in labels]
            if len(names) != len(items):
                raise ExperimentError(
                    f"labels ({len(names)}) must match tasks ({len(items)})"
                )
        if not items:
            return iter(())
        # Persistent pools advertise their own supervision surface
        # (submit/abandon/healthy); tasks stay on the warm workers across
        # retries instead of degrading in-process on the first hiccup.
        if getattr(self.inner, "supervises_as_pool", False):
            return self._pool_outcomes(function, items, names)
        # Exact type, not isinstance: pool-level supervision replaces the
        # executor's own map() with per-future waits, which would silently
        # bypass the overridden behavior of ProcessExecutor *subclasses*
        # (recording doubles, instrumented pools).  Those keep their own
        # code path and get in-process supervision semantics instead.
        if type(self.inner) is ProcessExecutor:
            return self._process_outcomes(function, items, names)
        return self._inprocess_outcomes(function, items, names)

    # ------------------------------------------------------------------ #
    def _attempt_loop(
        self,
        index: int,
        function: Callable[[Any], Any],
        task: Any,
        label: str,
        start_attempt: int,
        prior: BaseException | None,
    ) -> TaskOutcome:
        """Run attempts ``start_attempt..retries`` in-process; never raises."""
        policy = self.policy
        last = prior
        used = start_attempt
        for attempt in range(start_attempt, policy.retries + 1):
            if attempt > 0:
                time.sleep(policy.delay(attempt - 1, label))
            try:
                value = _run_attempt(
                    function, task, label, attempt, policy.task_timeout,
                    self._fault_hook,
                )
                return TaskOutcome(index, value=value)
            except Exception as exc:
                last = exc
                used = attempt + 1
        assert last is not None
        return TaskOutcome(
            index,
            failure=TaskFailure.from_exception(label, last, max(used, 1)),
            exception=last,
        )

    def _inprocess_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: list[Any],
        labels: list[str],
    ) -> Iterator[TaskOutcome]:
        policy = self.policy

        def guarded(pair: tuple[int, Any]) -> TaskOutcome:
            index, task = pair
            try:
                value = _run_attempt(
                    function, task, labels[index], 0, policy.task_timeout,
                    self._fault_hook,
                )
                return TaskOutcome(index, value=value)
            except Exception as exc:
                return TaskOutcome(
                    index,
                    failure=TaskFailure.from_exception(labels[index], exc, 1),
                    exception=exc,
                )

        # The first attempt of every task flows through the inner executor
        # (keeping custom in-process executors on their own code path);
        # retries are the exceptional path and run here, serially.
        for outcome in self.inner.map(guarded, list(enumerate(tasks))):
            if outcome.ok or policy.retries == 0:
                yield outcome
                continue
            yield self._attempt_loop(
                outcome.index,
                function,
                tasks[outcome.index],
                labels[outcome.index],
                1,
                outcome.exception,
            )

    def _pool_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: list[Any],
        labels: list[str],
    ) -> Iterator[TaskOutcome]:
        """Supervise a persistent pool through its own submission surface.

        All tasks are submitted upfront (the pool keeps its workers busy);
        outcomes are consumed in task order.  A crashed worker charges the
        crash to its task and the task is *resubmitted to the pool* while
        attempts and pool health allow — unlike the per-``map`` process
        pool there is no whole-pool respawn, because slots respawn
        individually inside the pool.  Timeouts put the hung worker down
        via ``abandon`` (freeing the slot) and finish the task's remaining
        attempts in-process, exactly like :meth:`_process_outcomes`.
        """
        policy = self.policy
        pool = self.inner
        total = len(tasks)
        attempts = [0] * total
        futures: dict[int, Any] = {}

        def submit(index: int) -> None:
            futures[index] = pool.submit(
                function,
                tasks[index],
                label=labels[index],
                attempt=attempts[index],
                fault_hook=self._fault_hook,
            )

        for index in range(total):
            submit(index)
        for index in range(total):
            while True:
                try:
                    value = futures[index].result(timeout=policy.task_timeout)
                    yield TaskOutcome(index, value=value)
                    break
                except _FuturesTimeout:
                    attempts[index] += 1
                    error: BaseException = TaskTimeoutError(
                        f"supervised task {labels[index]!r} exceeded its "
                        f"{policy.task_timeout:.3g}s timeout "
                        f"(attempt {attempts[index]})"
                    )
                    # The attempt is still occupying a worker: put that
                    # worker down so the slot frees up (it respawns lazily).
                    pool.abandon(futures[index])
                except WorkerCrashError as exc:
                    attempts[index] += 1
                    error = exc
                    if attempts[index] <= policy.retries and pool.healthy:
                        time.sleep(
                            policy.delay(attempts[index] - 1, labels[index])
                        )
                        submit(index)
                        continue
                except Exception as exc:
                    attempts[index] += 1
                    error = exc
                # Timeout, organic failure, or an unhealthy pool: remaining
                # attempts run in-process (degradation semantics).
                if attempts[index] <= policy.retries:
                    yield self._attempt_loop(
                        index, function, tasks[index], labels[index],
                        attempts[index], error,
                    )
                else:
                    yield TaskOutcome(
                        index,
                        failure=TaskFailure.from_exception(
                            labels[index], error, attempts[index]
                        ),
                        exception=error,
                    )
                break

    def _process_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: list[Any],
        labels: list[str],
    ) -> Iterator[TaskOutcome]:
        policy = self.policy
        total = len(tasks)
        attempts = [0] * total
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        respawns_left = 1
        serial = False
        futures: dict[int, Any] = {}

        def submit(index: int) -> None:
            futures[index] = pool.submit(
                _remote_attempt,
                (function, tasks[index], labels[index], attempts[index],
                 self._fault_hook),
            )

        try:
            for index in range(total):
                submit(index)
            for index in range(total):
                if serial:
                    # The pool is gone: surviving items run in-process with
                    # whatever attempt budget they have left.
                    yield self._attempt_loop(
                        index, function, tasks[index], labels[index],
                        attempts[index], None,
                    )
                    continue
                while True:
                    try:
                        value = futures[index].result(timeout=policy.task_timeout)
                        yield TaskOutcome(index, value=value)
                        break
                    except _FuturesTimeout:
                        attempts[index] += 1
                        error: BaseException = TaskTimeoutError(
                            f"supervised task {labels[index]!r} exceeded its "
                            f"{policy.task_timeout:.3g}s timeout "
                            f"(attempt {attempts[index]})"
                        )
                        # Best effort; a *running* attempt cannot be
                        # cancelled and its eventual result is discarded.
                        futures[index].cancel()
                    except BrokenProcessPool:
                        attempts[index] += 1
                        error = WorkerCrashError(
                            f"worker process died while running task "
                            f"{labels[index]!r}"
                        )
                        if respawns_left > 0:
                            respawns_left -= 1
                            pool.shutdown(wait=False)
                            pool = ProcessPoolExecutor(max_workers=self.jobs)
                            # Every unconsumed future died with the pool;
                            # the crash is charged to this task only, the
                            # rest get fresh submissions at their current
                            # attempt count.
                            if attempts[index] <= policy.retries:
                                time.sleep(
                                    policy.delay(attempts[index] - 1, labels[index])
                                )
                                for later in range(index, total):
                                    submit(later)
                                continue
                            for later in range(index + 1, total):
                                submit(later)
                            yield TaskOutcome(
                                index,
                                failure=TaskFailure.from_exception(
                                    labels[index], error, attempts[index]
                                ),
                                exception=error,
                            )
                        else:
                            serial = True
                            yield self._attempt_loop(
                                index, function, tasks[index], labels[index],
                                attempts[index], error,
                            )
                        break
                    except Exception as exc:
                        attempts[index] += 1
                        error = exc
                    # Timeout or organic failure: the remaining attempts run
                    # in-process while the pool keeps draining later tasks —
                    # a retry resubmitted behind busy workers would have its
                    # queue *wait*, not its work, counted against the timeout.
                    if attempts[index] <= policy.retries:
                        yield self._attempt_loop(
                            index, function, tasks[index], labels[index],
                            attempts[index], error,
                        )
                    else:
                        yield TaskOutcome(
                            index,
                            failure=TaskFailure.from_exception(
                                labels[index], error, attempts[index]
                            ),
                            exception=error,
                        )
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------------- #
# Bounded caches
# --------------------------------------------------------------------------- #
def approx_nbytes(value: Any, max_depth: int = 4) -> int:
    """Best-effort byte footprint of ``value`` for cache budgeting.

    Exact where it matters — anything exposing an integer ``nbytes``
    (NumPy arrays, compiled platform/tree views) reports that — and a
    bounded-depth ``sys.getsizeof`` walk everywhere else: builtin
    containers recurse into their elements, arbitrary objects into their
    ``__dict__``, with an id-based guard against cycles and shared
    sub-objects.  The result is an *estimate* (attribute slots, interned
    strings and sharing across entries are approximated), which is exactly
    what an eviction budget needs: stable, cheap, and roughly proportional
    to the real footprint.
    """
    seen: set[int] = set()

    def walk(item: Any, depth: int) -> int:
        nbytes = getattr(item, "nbytes", None)
        if isinstance(nbytes, int) and not isinstance(item, (bool, int)):
            return nbytes + 64  # array payload plus object overhead
        if isinstance(item, (int, float, bool, complex)) or item is None:
            return sys.getsizeof(item)
        if isinstance(item, (str, bytes, bytearray)):
            return sys.getsizeof(item)
        if id(item) in seen or depth <= 0:
            return sys.getsizeof(item) if depth <= 0 and id(item) not in seen else 0
        seen.add(id(item))
        total = sys.getsizeof(item)
        if isinstance(item, Mapping):
            for key, value_ in item.items():
                total += walk(key, depth - 1) + walk(value_, depth - 1)
            return total
        if isinstance(item, (list, tuple, set, frozenset)):
            for value_ in item:
                total += walk(value_, depth - 1)
            return total
        attributes = getattr(item, "__dict__", None)
        if isinstance(attributes, dict):
            total += walk(attributes, depth - 1)
        return total

    return walk(value, max_depth)


class ByteBudget:
    """One byte ceiling shared by several :class:`BoundedCache` members.

    Member caches charge their entries against the shared total; whenever
    the total exceeds ``max_bytes``, the budget evicts the *globally*
    least-recently-used entry across every member (each touch stamps a
    monotonic clock) until the total fits again.  All members share the
    budget's re-entrant lock, so charging, touching and rebalancing are
    mutually consistent under concurrent requests — the locking story of
    the long-lived solve service.

    ``max_bytes=None`` disables the ceiling (the budget still aggregates
    byte totals for introspection).
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ExperimentError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = max_bytes
        self.lock = threading.RLock()
        self._members: list["BoundedCache"] = []
        self._clock = 0

    def register(self, cache: "BoundedCache") -> None:
        """Add ``cache`` to the member set (done by the cache constructor)."""
        with self.lock:
            self._members.append(cache)

    def tick(self) -> int:
        """Next value of the shared recency clock."""
        self._clock += 1
        return self._clock

    @property
    def total_bytes(self) -> int:
        """Current charged bytes across every member cache."""
        with self.lock:
            return sum(member.current_bytes for member in self._members)

    @property
    def total_evictions(self) -> int:
        """Evictions performed across every member cache."""
        with self.lock:
            return sum(member.evictions for member in self._members)

    def rebalance(self) -> None:
        """Evict globally-oldest entries until the total fits the ceiling.

        An entry bigger than the whole ceiling is kept once it is the only
        thing left to evict — a cache must be able to hold the item it was
        just asked to hold; the budget converges to "that entry alone".
        """
        if self.max_bytes is None:
            return
        with self.lock:
            while self.total_bytes > self.max_bytes:
                if sum(len(member) for member in self._members) <= 1:
                    break  # the single remaining entry is the overage
                oldest: "BoundedCache | None" = None
                oldest_tick = 0
                for member in self._members:
                    tick = member._oldest_tick()
                    if tick is None:
                        continue
                    if oldest is None or tick < oldest_tick:
                        oldest, oldest_tick = member, tick
                if oldest is None:
                    break
                oldest._evict_one()


class BoundedCache:
    """Thread-safe LRU mapping with entry/byte budgets and usage counters.

    A drop-in replacement for the plain dictionaries behind the library's
    long-lived memo caches: ``get`` / ``__getitem__`` / ``__setitem__`` /
    ``__contains__`` / ``pop`` / ``clear`` / ``len`` / ``values`` behave
    like ``dict`` (with ``get`` and ``__getitem__`` refreshing recency),
    while every insert enforces the budgets by evicting the
    least-recently-used entries and counts hits, misses and evictions for
    :meth:`stats`.

    Parameters
    ----------
    max_entries:
        Entry-count ceiling; ``None`` disables it.
    max_bytes:
        Byte ceiling over the ``sizeof`` estimates of the stored values;
        ``None`` disables it.  Ignored when ``budget`` is given (the shared
        budget governs bytes then).
    sizeof:
        Value-size estimator; defaults to :func:`approx_nbytes`.  Sizes are
        sampled at insert time — values mutated in place afterwards keep
        their recorded charge.
    budget:
        Optional shared :class:`ByteBudget`; the cache registers itself and
        uses the budget's lock, so several caches can be evicted against
        one global ceiling.
    name:
        Diagnostic label surfaced by :meth:`stats`.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        *,
        sizeof: Callable[[Any], int] | None = None,
        budget: ByteBudget | None = None,
        name: str = "cache",
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ExperimentError(
                f"max_entries must be positive, got {max_entries!r}"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ExperimentError(f"max_bytes must be positive, got {max_bytes!r}")
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = None if budget is not None else max_bytes
        self._sizeof = sizeof if sizeof is not None else approx_nbytes
        self._budget = budget
        self._lock = budget.lock if budget is not None else threading.RLock()
        # key -> [value, nbytes, tick]; insertion/touch order is LRU order.
        self._entries: "OrderedDict[Any, list[Any]]" = OrderedDict()
        self._clock = 0
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if budget is not None:
            budget.register(self)

    # ------------------------------------------------------------------ #
    def _tick(self) -> int:
        if self._budget is not None:
            return self._budget.tick()
        self._clock += 1
        return self._clock

    def _oldest_tick(self) -> int | None:
        """Recency stamp of the least-recently-used entry (budget hook)."""
        if not self._entries:
            return None
        return next(iter(self._entries.values()))[2]

    def _evict_one(self) -> None:
        """Drop the least-recently-used entry (callers hold the lock)."""
        _, entry = self._entries.popitem(last=False)
        self.current_bytes -= entry[1]
        self.evictions += 1

    def _shrink(self) -> None:
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._evict_one()
        if self.max_bytes is not None:
            while self.current_bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_one()

    # ------------------------------------------------------------------ #
    _MISSING = object()

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            self.hits += 1
            entry[2] = self._tick()
            self._entries.move_to_end(key)
            return entry[0]

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, self._MISSING)
        if value is self._MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        nbytes = max(int(self._sizeof(value)), 0)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.current_bytes -= previous[1]
            self._entries[key] = [value, nbytes, self._tick()]
            self.current_bytes += nbytes
            self._shrink()
            if self._budget is not None:
                self._budget.rebalance()

    put = __setitem__

    def __contains__(self, key: Any) -> bool:
        # Membership does not refresh recency and is not counted: the
        # idiomatic ``if key in cache: cache[key]`` pair must count one hit.
        with self._lock:
            return key in self._entries

    def setdefault(self, key: Any, default: Any) -> Any:
        with self._lock:
            value = self.get(key, self._MISSING)
            if value is self._MISSING:
                self[key] = default
                return default
            return value

    def pop(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return default
            self.current_bytes -= entry[1]
            return entry[0]

    def clear(self) -> None:
        """Drop every entry (usage counters are kept — they describe the run)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[Any]:
        with self._lock:
            return list(self._entries)

    def values(self) -> list[Any]:
        with self._lock:
            return [entry[0] for entry in self._entries.values()]

    def items(self) -> list[tuple[Any, Any]]:
        with self._lock:
            return [(key, entry[0]) for key, entry in self._entries.items()]

    def stats(self) -> dict[str, Any]:
        """Usage snapshot: entries / bytes / hits / misses / evictions."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "max_entries": self.max_entries,
                "max_bytes": (
                    self._budget.max_bytes
                    if self._budget is not None
                    else self.max_bytes
                ),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundedCache({self.name}, entries={len(self._entries)}, "
            f"bytes={self.current_bytes})"
        )


# --------------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------------- #
class ResultCache:
    """Two-level row-list cache: in-memory dict plus optional on-disk JSON.

    The memory level returns the *same list object* for repeated lookups in
    one process; the disk level survives across processes.  Disk entries
    embed their key, the library version and the encoded rows; anything
    unreadable — truncated JSON, missing fields, a key mismatch — is
    quarantined (renamed to ``*.corrupt`` so it is never re-read and
    re-parsed on the next process start) and treated as a miss.  Entries
    written by another library version are a plain miss.  A cache directory
    that turns out to be unwritable degrades the cache to memory-only with
    a single :class:`RuntimeWarning` instead of crashing the campaign.

    Parameters
    ----------
    cache_dir:
        Optional directory for the on-disk level.
    memory:
        Pre-existing dictionary (or :class:`BoundedCache`) to use as the
        in-memory level (lets several caches share one process-wide store).
    encode / decode:
        Row codec for the disk level; the defaults pass JSON-compatible
        dictionaries through unchanged.  The experiments pipeline plugs in
        the :class:`~repro.experiments.evaluation.EvaluationRecord` codec.
    prefix:
        File-name prefix of the disk entries (``<prefix>-<key>.json``).
    max_memory_entries / max_memory_bytes:
        Budgets for the in-memory level (a :class:`BoundedCache` is created
        to hold it).  Evicted rows are *not* lost when a disk level is
        configured — the next lookup re-reads them from disk; with no disk
        level they are recomputed.  Mutually exclusive with ``memory``.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        *,
        memory: "dict[str, list[Any]] | BoundedCache | None" = None,
        encode: Callable[[Any], dict[str, Any]] | None = None,
        decode: Callable[[dict[str, Any]], Any] | None = None,
        prefix: str = "ensemble",
        version: str = "",
        max_memory_entries: int | None = None,
        max_memory_bytes: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ExperimentError(
                f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
            )
        bounded = max_memory_entries is not None or max_memory_bytes is not None
        if memory is not None and bounded:
            raise ExperimentError(
                "pass either a shared `memory` store or memory budgets, not both"
            )
        if memory is not None:
            self._memory: "dict[str, list[Any]] | BoundedCache" = memory
        elif bounded:
            self._memory = BoundedCache(
                max_memory_entries, max_memory_bytes, name=f"{prefix}-memory"
            )
        else:
            self._memory = {}
        self._encode = encode if encode is not None else dict
        self._decode = decode if decode is not None else dict
        self._prefix = prefix
        self._version = version
        self._disk_disabled = False

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{self._prefix}-{key}.json"

    @property
    def disk_active(self) -> bool:
        """Whether the on-disk level is configured and still writable."""
        return self.cache_dir is not None and not self._disk_disabled

    def _disable_disk(self, error: OSError) -> None:
        """Degrade to memory-only after a disk failure (warn exactly once)."""
        if self._disk_disabled:
            return
        self._disk_disabled = True
        warnings.warn(
            f"result cache directory {str(self.cache_dir)!r} is not writable "
            f"({error}); continuing with the in-memory level only — results "
            f"of this run will not be persisted",
            RuntimeWarning,
            stacklevel=4,
        )

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted disk entry aside so it is never re-parsed."""
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))

    def get(self, key: str) -> list[Any] | None:
        """Cached rows for ``key``, or ``None`` on a miss.

        A memory hit still writes through to an absent disk entry, so a
        caller that adds ``cache_dir`` after the rows were computed
        in-process gets them persisted rather than silently dropped.
        """
        rows = self._memory.get(key)
        if rows is not None:
            if self.disk_active and not self._path(key).exists():
                self._write_disk(key, rows)
            return rows
        if not self.disk_active:
            return None
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # plain miss: no entry (or unreadable directory)
        if os.environ.get(FAULT_PLAN_ENV):
            from .faults import maybe_corrupt_cache_text  # lazy, see above

            text = maybe_corrupt_cache_text(key, text)
        try:
            payload = json.loads(text)
            if payload["key"] != key:
                # The content disagrees with the file name: corruption.
                self._quarantine(path)
                return None
            if payload.get("version", "") != self._version:
                # A valid entry from another library version: just a miss
                # (a current-version write will replace it).
                return None
            rows = [self._decode(row) for row in payload["records"]]
        except (ValueError, KeyError, TypeError):
            # Truncated / malformed entry: quarantine and recompute.
            self._quarantine(path)
            return None
        self._memory[key] = rows
        return rows

    def put(self, key: str, rows: list[Any]) -> None:
        """Store ``rows`` in memory and (atomically) on disk."""
        self._memory[key] = rows
        if self.disk_active:
            self._write_disk(key, rows)

    def _write_disk(self, key: str, rows: list[Any]) -> None:
        assert self.cache_dir is not None
        payload = {
            "key": key,
            "version": self._version,
            "records": [self._encode(row) for row in rows],
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            # Unique temp name per writer: concurrent processes computing the
            # same key must not trample each other's rename source.
            descriptor, temporary = tempfile.mkstemp(
                dir=self.cache_dir, prefix=f"{self._prefix}-{key}.", suffix=".tmp"
            )
        except OSError as error:
            # Read-only or vanished directory: keep the campaign alive on
            # the memory level alone.
            self._disable_disk(error)
            return
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(temporary, self._path(key))
        except OSError as error:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            self._disable_disk(error)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory level (disk entries are kept)."""
        self._memory.clear()

    def memory_stats(self) -> dict[str, Any]:
        """Usage snapshot of the in-memory level.

        Bounded memory tiers report the full :meth:`BoundedCache.stats`
        block; unbounded ones report entry count only (byte accounting is
        not maintained for plain dictionaries).
        """
        if isinstance(self._memory, BoundedCache):
            return self._memory.stats()
        return {"entries": len(self._memory)}

    def __len__(self) -> int:
        return len(self._memory)
