"""Execution and caching infrastructure shared by the facade and the experiments.

This module holds the generic machinery introduced with the evaluation
pipeline (PR 1) in a dependency-free home so that both
:mod:`repro.api` (the :class:`~repro.api.Session` facade) and
:mod:`repro.experiments.pipeline` (the ensemble pipeline) can build on it
without importing each other:

* **Executors** — :class:`SerialExecutor` maps a function over work items
  in-process; :class:`ProcessExecutor` fans the same map out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Both preserve item
  order, so the result stream is identical whichever executor runs it.
* **ResultCache** — a two-level (in-memory + optional on-disk JSON) store
  of *row lists* keyed by caller-provided stable hashes.  The row type is
  pluggable through an ``encode`` / ``decode`` pair (JSON dictionaries by
  default); corrupted or mismatching disk entries are treated as misses.
* **stable_key** — the canonical-JSON SHA-256 used to derive those keys.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Protocol, Sequence, TypeVar

from .exceptions import ExperimentError

__all__ = [
    "TaskExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "ResultCache",
    "stable_key",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def stable_key(payload: Any) -> str:
    """SHA-256 of the canonical (sorted-keys) JSON rendering of ``payload``.

    Non-JSON values fall back to ``repr``, so any change in their printed
    form changes the key — exactly the conservative behaviour a cache wants.
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class TaskExecutor(Protocol):
    """Order-preserving, lazily-consumable map over a work-item list."""

    jobs: int

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterable[ResultT]: ...


class SerialExecutor:
    """Evaluate work items one after the other in the calling process."""

    jobs = 1

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterator[ResultT]:
        # Lazy so callers can report progress as items complete.
        return (function(task) for task in tasks)


class ProcessExecutor:
    """Fan work items out over a process pool, preserving item order.

    ``function`` and the items must be picklable (module-level functions,
    plain data); the facade ships jobs as JSON strings for this reason.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        tasks: Sequence[ItemT],
    ) -> Iterator[ResultT]:
        if not tasks:
            return iter(())
        # Modest chunks amortise pickling without starving short queues.
        chunksize = max(1, len(tasks) // (self.jobs * 8))

        def stream() -> Iterator[ResultT]:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                yield from pool.map(function, tasks, chunksize=chunksize)

        return stream()


# --------------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------------- #
class ResultCache:
    """Two-level row-list cache: in-memory dict plus optional on-disk JSON.

    The memory level returns the *same list object* for repeated lookups in
    one process; the disk level survives across processes.  Disk entries
    embed their key and the encoded rows; anything unreadable — truncated
    JSON, missing fields, a key mismatch after a version bump — is treated
    as a miss.

    Parameters
    ----------
    cache_dir:
        Optional directory for the on-disk level.
    memory:
        Pre-existing dictionary to use as the in-memory level (lets several
        caches share one process-wide store).
    encode / decode:
        Row codec for the disk level; the defaults pass JSON-compatible
        dictionaries through unchanged.  The experiments pipeline plugs in
        the :class:`~repro.experiments.evaluation.EvaluationRecord` codec.
    prefix:
        File-name prefix of the disk entries (``<prefix>-<key>.json``).
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        *,
        memory: dict[str, list[Any]] | None = None,
        encode: Callable[[Any], dict[str, Any]] | None = None,
        decode: Callable[[dict[str, Any]], Any] | None = None,
        prefix: str = "ensemble",
        version: str = "",
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ExperimentError(
                f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
            )
        self._memory: dict[str, list[Any]] = memory if memory is not None else {}
        self._encode = encode if encode is not None else dict
        self._decode = decode if decode is not None else dict
        self._prefix = prefix
        self._version = version

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{self._prefix}-{key}.json"

    def get(self, key: str) -> list[Any] | None:
        """Cached rows for ``key``, or ``None`` on a miss.

        A memory hit still writes through to an absent disk entry, so a
        caller that adds ``cache_dir`` after the rows were computed
        in-process gets them persisted rather than silently dropped.
        """
        if key in self._memory:
            rows = self._memory[key]
            if self.cache_dir is not None and not self._path(key).exists():
                self._write_disk(key, rows)
            return rows
        if self.cache_dir is None:
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["key"] != key:
                return None
            rows = [self._decode(row) for row in payload["records"]]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupted entry: recompute rather than crash.
            return None
        self._memory[key] = rows
        return rows

    def put(self, key: str, rows: list[Any]) -> None:
        """Store ``rows`` in memory and (atomically) on disk."""
        self._memory[key] = rows
        if self.cache_dir is not None:
            self._write_disk(key, rows)

    def _write_disk(self, key: str, rows: list[Any]) -> None:
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "version": self._version,
            "records": [self._encode(row) for row in rows],
        }
        # Unique temp name per writer: concurrent processes computing the
        # same key must not trample each other's rename source.
        descriptor, temporary = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f"{self._prefix}-{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(temporary, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory level (disk entries are kept)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
