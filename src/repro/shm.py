"""Zero-copy publication of compiled arrays through POSIX shared memory.

The warm worker pool (:mod:`repro.pool`, ROADMAP item 3) ships each job
group's :class:`~repro.platform.compiled.CompiledPlatform` arrays to the
workers *once*, as a named ``multiprocessing.shared_memory`` segment, so a
worker attaches read-only views instead of recompiling the platform (or
deserializing a JSON edge list) per batch.  This module holds the generic
machinery, independent of what the arrays mean:

* :func:`pack_arrays` — copy a named mapping of contiguous ndarrays into
  one fresh segment, back to back at 64-byte-aligned offsets, and return
  the segment plus a picklable layout description;
* :func:`attach_arrays` — open a segment by name and rebuild the read-only
  ndarray views the layout describes (zero copies);
* :class:`SharedSegmentRegistry` — the parent-side owner of published
  segments: memoizes by caller key, refcounts in-flight uses, evicts
  least-recently-used idle segments past a bound, and **unlinks everything
  it ever created** on :meth:`~SharedSegmentRegistry.close`, at garbage
  collection and at interpreter exit.

Lifecycle contract (the part that keeps ``/dev/shm`` clean):

* the *creator* (the registry, living in the pool's parent process) is the
  only party that ever calls ``unlink``; a ``weakref.finalize`` hook makes
  that happen even when the pool is abandoned without a clean shutdown;
* *attachers* (pool workers) only ever map and close.  A worker killed by
  ``SIGKILL`` — e.g. an injected crash fault — simply drops its mapping
  with the process; the name lives in the parent and is unlinked there, so
  crashed workers can never leak segments;
* attachers open the segment untracked on Python ≥ 3.13; on earlier
  versions the attach-side ``resource_tracker`` registration is benign by
  construction — workers are spawned children sharing the creator's
  tracker process, so the duplicate registration dedupes and doubles as a
  last-resort unlink should the whole tree die before cleanup (see
  :func:`_attach_segment`).

On Linux an ``unlink`` only removes the *name*: existing mappings stay
valid until their holders close them, so the registry may retire a segment
while a worker still holds views into it — the memory is reclaimed when
both sides are done.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Hashable, Mapping

import numpy as np

from .exceptions import ExperimentError

__all__ = [
    "SEGMENT_PREFIX",
    "pack_arrays",
    "attach_arrays",
    "attach_arrays_cached",
    "SharedSegmentRegistry",
]

#: Prefix of every segment this library creates; lifecycle tests scan
#: ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "repro_shm"

_ALIGNMENT = 64  # cache-line alignment for every array start


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(6)}"


def pack_arrays(
    arrays: Mapping[str, np.ndarray],
) -> tuple[shared_memory.SharedMemory, dict[str, Any]]:
    """Copy ``arrays`` into one fresh shared segment; return it with its layout.

    The layout maps each array name to ``{dtype, shape, offset}`` and is
    plain JSON-compatible data, so it can travel to workers inside any task
    payload.  The caller owns the returned segment (close + unlink).
    """
    if not arrays:
        raise ExperimentError("pack_arrays needs at least one array")
    layout: dict[str, Any] = {}
    staged: list[tuple[np.ndarray, int]] = []
    offset = 0
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        layout[name] = {
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "offset": offset,
        }
        staged.append((contiguous, offset))
        offset = _aligned(offset + contiguous.nbytes)
    segment = shared_memory.SharedMemory(
        name=_new_segment_name(), create=True, size=max(offset, 1)
    )
    for contiguous, start in staged:
        destination = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf, offset=start
        )
        destination[...] = contiguous
    return segment, {"arrays": layout, "nbytes": max(offset, 1)}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting its lifecycle.

    Python 3.13 grew ``track=False`` for exactly this.  Earlier versions
    register every attach with the ``resource_tracker`` — harmless *here*,
    because pool workers are spawned children sharing the creator's tracker
    process: the duplicate registration dedupes (the tracker keeps a set),
    the creator's eventual ``unlink`` unregisters the name once, and a
    still-registered name at tracker shutdown is unlinked as a last-resort
    safety net.  Explicitly unregistering instead would *remove the
    creator's registration* through the shared tracker and break that net.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def attach_arrays(
    name: str, layout: Mapping[str, Any]
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Map segment ``name`` and rebuild the read-only views ``layout`` describes.

    The returned views alias the shared mapping directly (zero copies) and
    are marked non-writable: a worker scribbling on a shared platform would
    corrupt every sibling's arrays at once.  Keep the returned segment
    object alive as long as any view is in use.
    """
    segment = _attach_segment(name)
    views: dict[str, np.ndarray] = {}
    for key, spec in layout["arrays"].items():
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=segment.buf,
            offset=spec["offset"],
        )
        view.flags.writeable = False
        views[key] = view
    return segment, views


# --------------------------------------------------------------------------- #
# Worker-side attach cache
# --------------------------------------------------------------------------- #
#: name -> (segment, views); keeps mappings (and therefore views handed to
#: callers) alive for the worker's lifetime.  Bounded opportunistically: a
#: mapping whose views are still referenced anywhere cannot be closed
#: (``BufferError``) and is simply kept.
_ATTACH_CACHE: "OrderedDict[str, tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 128
_ATTACH_LOCK = threading.Lock()


def attach_arrays_cached(name: str, layout: Mapping[str, Any]) -> dict[str, np.ndarray]:
    """Memoized :func:`attach_arrays`: one mapping per segment per process."""
    with _ATTACH_LOCK:
        hit = _ATTACH_CACHE.get(name)
        if hit is not None:
            _ATTACH_CACHE.move_to_end(name)
            return hit[1]
    segment, views = attach_arrays(name, layout)
    with _ATTACH_LOCK:
        _ATTACH_CACHE[name] = (segment, views)
        if len(_ATTACH_CACHE) > _ATTACH_CACHE_LIMIT:
            for stale in list(_ATTACH_CACHE)[: _ATTACH_CACHE_LIMIT // 2]:
                old_segment, _ = _ATTACH_CACHE[stale]
                try:
                    old_segment.close()
                except BufferError:
                    continue  # views still alive somewhere; keep the mapping
                _ATTACH_CACHE.pop(stale, None)
    return views


# --------------------------------------------------------------------------- #
# Registry (creator side)
# --------------------------------------------------------------------------- #
def _dispose_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink and close one owned segment, tolerating every partial state."""
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - platform-specific unlink quirks
        pass
    try:
        segment.close()
    except BufferError:  # live views in this process; mapping dies with them
        pass


def _dispose_all(entries: "OrderedDict[Hashable, list[Any]]") -> None:
    """Finalizer target: unlink every segment still owned (crash path)."""
    while entries:
        _, entry = entries.popitem()
        _dispose_segment(entry[0])


class SharedSegmentRegistry:
    """Parent-side owner of the published platform segments.

    ``publish(key, arrays)`` packs the arrays once per ``key`` and returns
    the segment name plus layout for the task payload; repeat publications
    of the same key are hits.  ``acquire``/``release`` refcount in-flight
    uses, so the LRU eviction (past ``max_segments``) never unlinks a
    segment a queued task still references.  :meth:`close` unlinks every
    owned segment; a ``weakref.finalize`` hook runs the same cleanup when
    the registry is garbage-collected or the interpreter exits, which is
    what keeps ``/dev/shm`` clean on the crash path — workers (attachers)
    never unlink, so a SIGKILLed worker cannot leak a name.
    """

    def __init__(self, max_segments: int = 64) -> None:
        if max_segments < 1:
            raise ExperimentError(f"max_segments must be >= 1, got {max_segments}")
        self.max_segments = max_segments
        self._lock = threading.Lock()
        # key -> [segment, layout, refcount]; insertion order is LRU order.
        self._entries: "OrderedDict[Hashable, list[Any]]" = OrderedDict()
        self._closed = False
        self.published = 0
        self.hits = 0
        self.evictions = 0
        self._finalizer = weakref.finalize(self, _dispose_all, self._entries)

    # ------------------------------------------------------------------ #
    def publish(
        self, key: Hashable, arrays: Mapping[str, np.ndarray]
    ) -> tuple[str, dict[str, Any]]:
        """The ``(segment name, layout)`` of ``arrays`` under ``key``.

        Packs on first sight of the key, then serves the memoized segment;
        arrays are assumed immutable for a given key (platform keys embed
        the mutation-epoch-stable canonical payload, so this holds).
        """
        with self._lock:
            if self._closed:
                raise ExperimentError("shared-segment registry is closed")
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[0].name, entry[1]
            segment, layout = pack_arrays(arrays)
            self._entries[key] = [segment, layout, 0]
            self.published += 1
            self._evict_idle()
            return segment.name, layout

    def acquire(self, key: Hashable) -> None:
        """Pin ``key``'s segment while a task referencing it is in flight."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry[2] += 1

    def release(self, key: Hashable) -> None:
        """Drop one pin (no-op for unknown / already-evicted keys)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[2] > 0:
                entry[2] -= 1

    def _evict_idle(self) -> None:
        """LRU-evict unpinned segments past the bound (lock held)."""
        while len(self._entries) > self.max_segments:
            victim = next(
                (k for k, e in self._entries.items() if e[2] == 0), None
            )
            if victim is None:
                return  # everything is pinned; stay over the bound for now
            entry = self._entries.pop(victim)
            _dispose_segment(entry[0])
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def total_bytes(self) -> int:
        """Bytes held by the currently-owned segments."""
        with self._lock:
            return sum(entry[1]["nbytes"] for entry in self._entries.values())

    def stats(self) -> dict[str, Any]:
        """Snapshot for ``cache_stats()`` / ``/statz``."""
        with self._lock:
            return {
                "segments": len(self._entries),
                "bytes": sum(e[1]["nbytes"] for e in self._entries.values()),
                "published": self.published,
                "hits": self.hits,
                "evictions": self.evictions,
            }

    def close(self) -> None:
        """Unlink every owned segment now (idempotent)."""
        with self._lock:
            self._closed = True
            while self._entries:
                _, entry = self._entries.popitem()
                _dispose_segment(entry[0])
        self._finalizer.detach()
