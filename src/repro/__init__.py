"""repro — Broadcast Trees for Heterogeneous Platforms.

A faithful, self-contained reproduction of *"Broadcast Trees for
Heterogeneous Platforms"* (Beaumont, Marchal, Robert — IPPS 2005 / LIP
RR-2004-46): heuristics that build single spanning trees for pipelined
broadcasts on heterogeneous platforms, the steady-state linear program
giving the multiple-tree optimal throughput used as the reference, the
throughput / makespan analysis, a discrete-event simulator validating the
analysis, and the experiment harness regenerating every figure and table of
the paper's evaluation.

Quick start
-----------
The recommended entry point is the :mod:`repro.api` facade — describe one
solve as a declarative :class:`Job`, hand it to a cache-owning
:class:`Session`, and read lazy metrics off the :class:`Result`:

>>> from repro import Job, PlatformRecipe, Session
>>> session = Session()
>>> job = Job.broadcast(
...     PlatformRecipe.of("random", num_nodes=15, density=0.2, seed=42),
...     source=0, heuristic="grow-tree",
... )
>>> result = session.solve(job)
>>> result.throughput > 0 and result.lp_bound >= result.throughput
True

The classic layer-by-layer helpers (:func:`generate_random_platform`,
:func:`build_broadcast_tree`, :func:`tree_throughput`,
:func:`solve_steady_state_lp`, ...) remain available as documented thin
wrappers over the same machinery:

>>> from repro import generate_random_platform, build_broadcast_tree, tree_throughput
>>> platform = generate_random_platform(num_nodes=15, density=0.2, seed=42)
>>> tree = build_broadcast_tree(platform, source=0, heuristic="grow-tree")
>>> report = tree_throughput(tree)
>>> report.throughput > 0
True
"""

from ._version import __version__
from .api import (
    DynamicJob,
    DynamicResult,
    Job,
    PlatformRecipe,
    Result,
    Session,
    default_session,
)
from .collectives import CollectiveKind, CollectiveSpec
from .dynamics import PlatformTrace, TraceSpec, generate_trace, replay_tree, run_dynamic
from .analysis import (
    BottleneckReport,
    MakespanReport,
    SummaryStatistics,
    ThroughputReport,
    analyze_bottleneck,
    collective_throughput,
    fill_time,
    makespan_lower_bound,
    node_periods,
    pipelined_makespan,
    pipelined_makespan_reference,
    relative_performance,
    summarize,
    tree_throughput,
)
from .core import (
    HEURISTICS,
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    BinomialTreeHeuristic,
    BroadcastTree,
    GrowingMinimumOutDegreeTree,
    LocalSearchImprovement,
    LPCommunicationGraphPruning,
    LPGrowTree,
    MultiPortGrowingTree,
    MultiPortRefinedPruning,
    RefinedPlatformPruning,
    SimplePlatformPruning,
    TreeHeuristic,
    available_heuristics,
    build_broadcast_tree,
    build_collective_tree,
    get_heuristic,
    improve_tree,
    register_heuristic,
)
from .exceptions import (
    ConfigError,
    DisconnectedPlatformError,
    HeuristicError,
    InfeasibleLPError,
    LPError,
    NotASpanningTreeError,
    PlatformError,
    ReproError,
    SimulationError,
    TreeError,
    UnknownHeuristicError,
)
from .lp import (
    LPSolutionCache,
    SteadyStateSolution,
    build_collective_lp,
    build_steady_state_lp,
    collective_optimal_throughput,
    optimal_throughput,
    solve_collective_lp,
    solve_steady_state_lp,
)
from .simulation import simulate_broadcast, simulate_collective
from .models import MultiPortModel, OnePortModel, PortModel, PortModelKind, get_port_model
from .platform import (
    AffineCost,
    CompiledPlatform,
    Link,
    LinkCostModel,
    Platform,
    compile_platform,
    PlatformBuilder,
    ProcessorNode,
    RandomPlatformConfig,
    TiersConfig,
    generate_cluster_platform,
    generate_complete_platform,
    generate_grid_platform,
    generate_hypercube_platform,
    generate_random_platform,
    generate_ring_platform,
    generate_star_platform,
    generate_tiers_platform,
    load_platform,
    save_platform,
)

__all__ = [
    "__version__",
    # api facade
    "Job",
    "PlatformRecipe",
    "Result",
    "Session",
    "default_session",
    "DynamicJob",
    "DynamicResult",
    # dynamics
    "TraceSpec",
    "PlatformTrace",
    "generate_trace",
    "replay_tree",
    "run_dynamic",
    # collectives
    "CollectiveKind",
    "CollectiveSpec",
    "build_collective_tree",
    "build_collective_lp",
    "solve_collective_lp",
    "collective_optimal_throughput",
    "collective_throughput",
    "simulate_broadcast",
    "simulate_collective",
    # analysis
    "BottleneckReport",
    "MakespanReport",
    "SummaryStatistics",
    "ThroughputReport",
    "analyze_bottleneck",
    "fill_time",
    "makespan_lower_bound",
    "node_periods",
    "pipelined_makespan",
    "pipelined_makespan_reference",
    "relative_performance",
    "summarize",
    "tree_throughput",
    # core
    "HEURISTICS",
    "PAPER_MULTI_PORT_HEURISTICS",
    "PAPER_ONE_PORT_HEURISTICS",
    "BinomialTreeHeuristic",
    "BroadcastTree",
    "GrowingMinimumOutDegreeTree",
    "LocalSearchImprovement",
    "LPCommunicationGraphPruning",
    "LPGrowTree",
    "MultiPortGrowingTree",
    "MultiPortRefinedPruning",
    "RefinedPlatformPruning",
    "SimplePlatformPruning",
    "TreeHeuristic",
    "available_heuristics",
    "build_broadcast_tree",
    "get_heuristic",
    "improve_tree",
    "register_heuristic",
    # exceptions
    "ConfigError",
    "DisconnectedPlatformError",
    "HeuristicError",
    "InfeasibleLPError",
    "LPError",
    "NotASpanningTreeError",
    "PlatformError",
    "ReproError",
    "SimulationError",
    "TreeError",
    "UnknownHeuristicError",
    # lp
    "LPSolutionCache",
    "SteadyStateSolution",
    "build_steady_state_lp",
    "optimal_throughput",
    "solve_steady_state_lp",
    # models
    "MultiPortModel",
    "OnePortModel",
    "PortModel",
    "PortModelKind",
    "get_port_model",
    # platform
    "AffineCost",
    "CompiledPlatform",
    "compile_platform",
    "Link",
    "LinkCostModel",
    "Platform",
    "PlatformBuilder",
    "ProcessorNode",
    "RandomPlatformConfig",
    "TiersConfig",
    "generate_cluster_platform",
    "generate_complete_platform",
    "generate_grid_platform",
    "generate_hypercube_platform",
    "generate_random_platform",
    "generate_ring_platform",
    "generate_star_platform",
    "generate_tiers_platform",
    "load_platform",
    "save_platform",
]
