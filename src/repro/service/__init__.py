"""A robust, long-lived HTTP/JSON solve service over :mod:`repro.api`.

ROADMAP item 1 made concrete: one process holds a warm, *byte-budgeted*
:class:`~repro.api.Session` and serves versioned :class:`~repro.api.Job`
payloads over plain :mod:`http.server` — no third-party dependency — with
the three robustness layers a server needs before it needs features:

* **bounded memory** — every session cache lives under a shared
  :class:`~repro.runtime.ByteBudget` with global-LRU eviction, surfaced
  via ``GET /statz``;
* **admission control** — a bounded queue plus per-tenant quotas answer
  overload with HTTP 429 + ``Retry-After`` *before* latency degrades, and
  per-request deadlines become supervised task timeouts;
* **graceful degradation** — malformed input is a structured 400, a failed
  job is a :class:`~repro.api.FailedResult` inside a 200 batch response,
  an injected or organic internal error is a structured 500, and SIGTERM
  drains in-flight work instead of dropping it.

Quick start::

    python -m repro.cli serve --port 8642 --max-cache-bytes 268435456

    curl -s -X POST localhost:8642/solve -d "$(python - <<'EOF'
    from repro.api import Job, PlatformRecipe
    print(Job.broadcast(PlatformRecipe.of("random", num_nodes=12,
          density=0.25, seed=7), source=0).to_json())
    EOF
    )"

See ``examples/service_client.py`` for a complete client and the README's
*Service* section for the wire contract.
"""

from .admission import AdmissionController, Deadline
from .handlers import ServiceApp, error_payload, parse_solve_request
from .quotas import TenantLedger
from .server import ServiceConfig, ServiceUnavailableError, SolveService, serve

__all__ = [
    "AdmissionController",
    "Deadline",
    "ServiceApp",
    "ServiceConfig",
    "ServiceUnavailableError",
    "SolveService",
    "TenantLedger",
    "error_payload",
    "parse_solve_request",
    "serve",
]
