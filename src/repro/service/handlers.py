"""Route logic of the solve service, independent of any transport.

:class:`ServiceApp` maps ``(method, path, body, headers)`` to
``(status, payload, extra_headers)`` — a WSGI-thin contract the
:mod:`http.server` glue in :mod:`repro.service.server` forwards verbatim
and tests drive directly, without sockets.

Every response body is JSON.  The error contract is uniform::

    {"ok": false,
     "error": {"kind": "<machine tag>", "message": "<human text>"}}

with the HTTP status carrying the same information positionally
(400 malformed payload, 404 unknown route, 429 over admission with a
``Retry-After`` header, 504 deadline exceeded, 503 draining, 500
internal/injected).  Exceptions never escape :meth:`ServiceApp.handle` —
a traceback is a bug by this module's definition, and the CI soak test
enforces it under fault injection.
"""

from __future__ import annotations

import json
import threading
from typing import TYPE_CHECKING, Any, Mapping

from ..api import Job
from ..exceptions import (
    AdmissionError,
    ConfigError,
    InjectedFault,
    ReproError,
    ServiceError,
)
from ..faults import maybe_fail_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import SolveService

__all__ = ["ServiceApp", "error_payload", "parse_solve_request"]

#: Upper bound on request bodies (bytes of text); a backstop against a
#: client streaming garbage into a JSON parse.
MAX_BODY_BYTES = 4 * 1024 * 1024


def error_payload(kind: str, message: str) -> dict[str, Any]:
    """The uniform structured error body."""
    return {"ok": False, "error": {"kind": kind, "message": message}}


def parse_solve_request(body: str) -> tuple[list[Job], float | None]:
    """Parse a ``POST /solve`` body into jobs and an optional deadline.

    Accepts either one job payload (the exact :meth:`Job.canonical_payload`
    form) or an envelope ``{"jobs": [<payload>, ...], "deadline": <sec>}``.
    Raises :class:`ConfigError` — never anything else — on malformed input;
    :meth:`Job.from_dict` inside already rejects over-version payloads the
    same way.
    """
    if len(body.encode("utf-8", "replace")) > MAX_BODY_BYTES:
        raise ConfigError(
            f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    try:
        data = json.loads(body) if body.strip() else None
    except json.JSONDecodeError as error:
        raise ConfigError(f"request body is not valid JSON: {error}") from None
    if not isinstance(data, Mapping):
        raise ConfigError(
            "request body must be a JSON object: one job payload or "
            '{"jobs": [...]}'
        )
    deadline: float | None = None
    if "jobs" in data:
        payloads = data["jobs"]
        if not isinstance(payloads, list) or not payloads:
            raise ConfigError('"jobs" must be a non-empty JSON array')
        raw_deadline = data.get("deadline")
        if raw_deadline is not None:
            try:
                deadline = float(raw_deadline)
            except (TypeError, ValueError):
                raise ConfigError(
                    f'"deadline" must be a number of seconds, got {raw_deadline!r}'
                ) from None
            if deadline <= 0:
                raise ConfigError(
                    f'"deadline" must be positive, got {deadline!r}'
                )
    else:
        payloads = [data]
    jobs: list[Job] = []
    for index, payload in enumerate(payloads):
        if not isinstance(payload, Mapping):
            raise ConfigError(f"job #{index} is not a JSON object")
        try:
            jobs.append(Job.from_dict(payload))
        except ConfigError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(
                f"job #{index} is malformed: {error!r}"
            ) from None
    return jobs, deadline


class ServiceApp:
    """The solve service's routes over a :class:`~repro.service.server.SolveService`.

    ============  ======  ===========================================
    path          method  behaviour
    ============  ======  ===========================================
    ``/solve``    POST    admit, batch-solve, return per-job results
    ``/healthz``  GET     liveness (200 while the process runs)
    ``/readyz``   GET     readiness (503 while paused/draining/stopped)
    ``/statz``    GET     queue depth, counters, cache stats
    ============  ======  ===========================================
    """

    def __init__(self, service: "SolveService") -> None:
        self.service = service
        self._lock = threading.Lock()
        self._solve_ordinal = 0

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, body: str, headers: Mapping[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Serve one request; returns ``(status, payload, extra_headers)``.

        Guaranteed not to raise: every failure mode — malformed input,
        admission rejection, deadline expiry, worker faults, injected
        request faults, plain bugs — maps to a structured JSON error body.
        """
        try:
            return self._route(method, path.split("?", 1)[0], body, headers)
        except AdmissionError as error:
            self._count("requests_rejected")
            return (
                error.status,
                error_payload("admission_rejected", str(error)),
                {"Retry-After": f"{max(error.retry_after, 0.0):.3f}"},
            )
        except ConfigError as error:
            self._count("requests_malformed")
            return 400, error_payload("invalid_request", str(error)), {}
        except ServiceError as error:
            kind = (
                "deadline_exceeded" if error.status == 504 else "unavailable"
                if error.status == 503 else "service_error"
            )
            return error.status, error_payload(kind, str(error)), {}
        except InjectedFault as error:
            self._count("requests_injected")
            return 500, error_payload("injected_fault", str(error)), {}
        except ReproError as error:
            self._count("requests_failed")
            return 500, error_payload("solve_failed", str(error)), {}
        except Exception as error:  # noqa: BLE001 - the no-traceback contract
            self._count("requests_failed")
            return (
                500,
                error_payload(
                    "internal_error", f"{type(error).__name__}: {error}"
                ),
                {},
            )

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _route(
        self, method: str, path: str, body: str, headers: Mapping[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "status": "alive"}, {}
        if path == "/readyz" and method == "GET":
            if self.service.ready:
                return 200, {"ok": True, "status": "ready"}, {}
            return 503, error_payload("unavailable", "service not ready"), {}
        if path == "/statz" and method == "GET":
            return 200, {"ok": True, **self.service.stats()}, {}
        if path == "/solve" and method == "POST":
            return self._solve(body, headers)
        return (
            404,
            error_payload("not_found", f"no route for {method} {path}"),
            {},
        )

    def _solve(
        self, body: str, headers: Mapping[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        with self._lock:
            ordinal = self._solve_ordinal
            self._solve_ordinal += 1
        # Deterministic service-level fault site: under an injected plan a
        # predictable subset of requests dies *here*, and the except-chain
        # above must turn each into a structured 500.
        maybe_fail_request(str(ordinal))
        jobs, deadline_seconds = parse_solve_request(body)
        tenant = str(headers.get("X-Tenant") or "default")
        self._count("requests_total")
        results = self.service.submit(
            jobs, tenant=tenant, deadline_seconds=deadline_seconds
        )
        wire = [result.wire_dict() for result in results]
        failed = sum(1 for entry in wire if not entry["ok"])
        # Per-job failures are data, not transport errors: the batch itself
        # succeeded, so the response is 200 with explicit partiality.
        return (
            200,
            {
                "ok": True,
                "partial": failed > 0,
                "failed": failed,
                "results": wire,
            },
            {},
        )

    def _count(self, name: str) -> None:
        self.service.count(name)
