"""Per-tenant in-flight job accounting for the solve service.

A :class:`TenantLedger` counts how many jobs each tenant currently has in
the system (queued or solving) and rejects an acquisition that would push
a tenant past its quota.  The ledger is deliberately dumb — no time
windows, no token buckets — because the service's real capacity limit is
the shared bounded queue (:class:`~repro.service.admission.AdmissionController`);
the per-tenant quota only stops one chatty client from monopolising it.
"""

from __future__ import annotations

import threading

from ..exceptions import AdmissionError

__all__ = ["TenantLedger"]


class TenantLedger:
    """Thread-safe per-tenant in-flight counters with a shared quota.

    ``max_inflight`` is the per-tenant ceiling on concurrently admitted
    jobs; ``None`` disables the quota (every tenant admitted).  Counters
    drop back to zero — and the tenant's entry disappears — when all of a
    tenant's jobs are released, so the ledger cannot grow without bound in
    a long-lived server accepting many distinct tenant names.
    """

    def __init__(self, max_inflight: int | None = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self.rejections = 0

    def acquire(self, tenant: str, n: int, *, retry_after: float = 1.0) -> None:
        """Charge ``n`` jobs to ``tenant`` or raise :class:`AdmissionError`."""
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if (
                self.max_inflight is not None
                and current + n > self.max_inflight
            ):
                self.rejections += 1
                raise AdmissionError(
                    f"tenant {tenant!r} quota exhausted: {current} job(s) in "
                    f"flight + {n} requested > {self.max_inflight} allowed",
                    retry_after=retry_after,
                )
            self._inflight[tenant] = current + n

    def release(self, tenant: str, n: int) -> None:
        """Return ``n`` job slots for ``tenant``."""
        with self._lock:
            current = self._inflight.get(tenant, 0)
            remaining = max(0, current - n)
            if remaining:
                self._inflight[tenant] = remaining
            else:
                self._inflight.pop(tenant, None)

    def snapshot(self) -> dict[str, int]:
        """Current in-flight count per tenant (for ``/statz``)."""
        with self._lock:
            return dict(self._inflight)

    def total_inflight(self) -> int:
        """Jobs currently admitted across every tenant."""
        with self._lock:
            return sum(self._inflight.values())
