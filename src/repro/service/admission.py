"""Admission control and request deadlines for the solve service.

Two small primitives keep an overloaded server honest instead of slow:

* :class:`Deadline` — a monotonic-clock budget carried by every request.
  The HTTP handler waits on it, the solve loop threads the *remaining*
  budget into :class:`~repro.runtime.RetryPolicy.task_timeout`, and an
  expired deadline becomes a structured HTTP 504 — never an unbounded
  hang.
* :class:`AdmissionController` — a byte-simple bounded counter over the
  *total* queued/solving jobs, combined with the per-tenant
  :class:`~repro.service.quotas.TenantLedger`.  A request that does not
  fit is rejected immediately with :class:`~repro.exceptions.AdmissionError`
  (HTTP 429 + ``Retry-After``): back-pressure is explicit and early, so
  queue latency stays bounded by design instead of by luck.
"""

from __future__ import annotations

import threading
import time

from ..exceptions import AdmissionError
from .quotas import TenantLedger

__all__ = ["Deadline", "AdmissionController"]


class Deadline:
    """A wall-clock budget anchored on the monotonic clock.

    ``Deadline.after(5.0)`` expires five seconds from now; ``remaining()``
    never goes negative (an expired deadline reports ``0.0``).  Carried per
    request so every layer — handler wait, solve-loop task timeout — spends
    from the same budget.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left before expiry, floored at zero."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class AdmissionController:
    """Bounded admission over total queued jobs plus per-tenant quotas.

    ``max_queued_jobs`` bounds the number of jobs admitted but not yet
    fulfilled across *all* tenants; ``ledger`` enforces the per-tenant
    share.  ``admit`` either charges both counters atomically or raises
    :class:`AdmissionError` with a ``Retry-After`` hint — partial charges
    never leak (a tenant rejection rolls the global charge back).
    """

    def __init__(
        self,
        max_queued_jobs: int,
        ledger: TenantLedger,
        *,
        retry_after: float = 1.0,
    ) -> None:
        if max_queued_jobs < 1:
            raise ValueError(
                f"max_queued_jobs must be >= 1, got {max_queued_jobs}"
            )
        self.max_queued_jobs = max_queued_jobs
        self.ledger = ledger
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._queued = 0
        self.rejections = 0

    def admit(self, tenant: str, n_jobs: int) -> None:
        """Admit ``n_jobs`` for ``tenant`` or raise :class:`AdmissionError`."""
        with self._lock:
            if self._queued + n_jobs > self.max_queued_jobs:
                self.rejections += 1
                raise AdmissionError(
                    f"request queue full: {self._queued} job(s) queued + "
                    f"{n_jobs} requested > {self.max_queued_jobs} allowed",
                    retry_after=self.retry_after,
                )
            self._queued += n_jobs
        try:
            self.ledger.acquire(tenant, n_jobs, retry_after=self.retry_after)
        except AdmissionError:
            with self._lock:
                self._queued -= n_jobs
            raise

    def release(self, tenant: str, n_jobs: int) -> None:
        """Return ``n_jobs`` slots (request fulfilled, expired or failed)."""
        with self._lock:
            self._queued = max(0, self._queued - n_jobs)
        self.ledger.release(tenant, n_jobs)

    @property
    def queued_jobs(self) -> int:
        """Jobs currently admitted (queued or solving)."""
        with self._lock:
            return self._queued
