"""The long-lived solve service: bounded session, batching loop, HTTP glue.

:class:`SolveService` is the engine: it owns one byte-budgeted
:class:`~repro.api.Session`, admits requests through
:class:`~repro.service.admission.AdmissionController`, micro-batches
concurrently queued jobs into single :meth:`~repro.api.Session.solve_many`
calls (so concurrent requests for the same platform share one LP solve and
one kernel sweep), and threads each request's remaining
:class:`~repro.service.admission.Deadline` into the
:class:`~repro.runtime.RetryPolicy` per-task timeout.

:func:`serve` wraps the engine in a :class:`http.server.ThreadingHTTPServer`
speaking the JSON contract of :class:`~repro.service.handlers.ServiceApp`,
and installs SIGTERM/SIGINT handlers that *drain* — stop admitting, finish
what is queued (up to ``drain_timeout``), then exit 0 — instead of dying
mid-solve.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
from collections import deque
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence

from ..api import Job, Result, Session
from ..exceptions import ConfigError, DeadlineExceededError, ReproError, ServiceError
from .admission import AdmissionController, Deadline
from .handlers import ServiceApp
from .quotas import TenantLedger

__all__ = ["ServiceConfig", "ServiceUnavailableError", "SolveService", "serve"]


class ServiceUnavailableError(ServiceError):
    """The service is draining or stopped; served as HTTP 503."""

    status = 503


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes one solve-service process.

    The defaults suit the 1-CPU reference container: a serial in-process
    session, a queue a few bursts deep, and cache budgets small enough that
    a soak run *observes* evictions instead of merely hoping the bound
    holds.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    #: Total jobs admitted but not yet fulfilled, across all tenants.
    max_queued_jobs: int = 64
    #: Per-tenant ceiling on admitted jobs (``None`` disables quotas).
    tenant_quota: int | None = 32
    #: Deadline applied when a request does not carry its own, seconds.
    default_deadline: float = 30.0
    #: Hard ceiling on client-supplied deadlines, seconds.
    max_deadline: float = 300.0
    #: ``Retry-After`` hint attached to 429 rejections, seconds.
    retry_after: float = 1.0
    #: Jobs gathered into one ``solve_many`` call per batching round.
    max_batch_jobs: int = 32
    #: How long a SIGTERM drain waits for in-flight work, seconds.
    drain_timeout: float = 30.0
    #: Worker processes of the owned session (1 = serial in-process).
    jobs: int = 1
    #: Executor backend of the owned session (``None`` = auto by ``jobs``:
    #: serial at 1, the warm worker pool above — see
    #: :func:`~repro.runtime.make_executor`).
    backend: str | None = None
    #: Micro-batches allowed in flight at once when the session runs on a
    #: worker pool: the solve loop dispatches the next batch while the
    #: pool still chews on the previous one, overlapping batching latency
    #: with pool work.  1 restores the strictly sequential loop.
    max_inflight_batches: int = 2
    #: Optional on-disk result cache directory for the owned session.
    cache_dir: str | None = None
    #: Per-cache entry bound of the owned session.
    max_cache_entries: int | None = 512
    #: Shared byte budget of the owned session's caches.
    max_cache_bytes: int | None = 256 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.default_deadline <= 0:
            raise ConfigError(
                f"default_deadline must be positive, got {self.default_deadline!r}"
            )
        if self.max_batch_jobs < 1:
            raise ConfigError(
                f"max_batch_jobs must be >= 1, got {self.max_batch_jobs!r}"
            )
        if self.max_inflight_batches < 1:
            raise ConfigError(
                "max_inflight_batches must be >= 1, "
                f"got {self.max_inflight_batches!r}"
            )


class _PendingRequest:
    """One admitted request travelling from handler thread to solve loop."""

    __slots__ = ("jobs", "tenant", "deadline", "done", "results", "error")

    def __init__(self, jobs: Sequence[Job], tenant: str, deadline: Deadline) -> None:
        self.jobs = list(jobs)
        self.tenant = tenant
        self.deadline = deadline
        self.done = threading.Event()
        self.results: list[Result] | None = None
        self.error: Exception | None = None


class SolveService:
    """The request engine behind the HTTP endpoints.

    Lifecycle: :meth:`start` spawns the solve loop; :meth:`submit` admits,
    enqueues and waits (the caller's deadline bounds the wait);
    :meth:`drain` stops admission and lets the queue empty; :meth:`stop`
    halts the loop and fails whatever is still queued with a structured
    503.  ``pause()`` / ``resume()`` freeze the solve loop — a test hook
    that makes queue-full 429s and deadline 504s deterministic.
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, session: Session | None = None
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._owns_session = session is None
        self.session = (
            session
            if session is not None
            else Session(
                jobs=self.config.jobs,
                backend=self.config.backend,
                cache_dir=self.config.cache_dir,
                max_cache_entries=self.config.max_cache_entries,
                max_cache_bytes=self.config.max_cache_bytes,
            )
        )
        self.admission = AdmissionController(
            self.config.max_queued_jobs,
            TenantLedger(self.config.tenant_quota),
            retry_after=self.config.retry_after,
        )
        self._queue: "queue.Queue[_PendingRequest]" = queue.Queue()
        self._gate = threading.Event()
        self._gate.set()
        self._stop = threading.Event()
        self._draining = False
        self._counters: dict[str, int] = {}
        self._counter_lock = threading.Lock()
        self._loop: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SolveService":
        """Spawn the batching solve loop (idempotent)."""
        if self._loop is None or not self._loop.is_alive():
            self._stop.clear()
            self._loop = threading.Thread(
                target=self._solve_loop, name="repro-solve-loop", daemon=True
            )
            self._loop.start()
        return self

    @property
    def ready(self) -> bool:
        """Whether new requests will be accepted and eventually solved."""
        return (
            self._loop is not None
            and self._loop.is_alive()
            and not self._draining
            and not self._stop.is_set()
        )

    def pause(self) -> None:
        """Freeze the solve loop (test hook: deterministic 429/504)."""
        self._gate.clear()

    def resume(self) -> None:
        """Unfreeze the solve loop."""
        self._gate.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, let queued work finish; ``True`` if it all did.

        The graceful half of shutdown: after ``drain`` returns, call
        :meth:`stop` to halt the loop (failing any stragglers with 503).
        """
        self._draining = True
        self._gate.set()
        budget = Deadline.after(
            timeout if timeout is not None else self.config.drain_timeout
        )
        while self.admission.queued_jobs > 0 and not budget.expired:
            threading.Event().wait(0.02)
        return self.admission.queued_jobs == 0

    def stop(self) -> None:
        """Halt the solve loop and fail whatever is still queued (503)."""
        self._draining = True
        self._stop.set()
        self._gate.set()
        if self._loop is not None and self._loop.is_alive():
            self._loop.join(timeout=5.0)
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.error = ServiceUnavailableError(
                "service stopped before the request was solved"
            )
            self._finish(request)
        if self._owns_session:
            # Stops warm-pool workers and unlinks their shared segments.
            self.session.close()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        jobs: Sequence[Job],
        *,
        tenant: str = "default",
        deadline_seconds: float | None = None,
    ) -> list[Result]:
        """Admit ``jobs``, wait for the solve loop, return per-job results.

        Raises :class:`~repro.exceptions.AdmissionError` (429) when over
        capacity, :class:`ServiceUnavailableError` (503) while draining,
        and :class:`~repro.exceptions.DeadlineExceededError` (504) when the
        deadline expires first — in which case the solve still completes in
        the background and warms the caches for a retry.
        """
        if not self.ready:
            raise ServiceUnavailableError("service is draining or stopped")
        seconds = (
            self.config.default_deadline
            if deadline_seconds is None
            else min(deadline_seconds, self.config.max_deadline)
        )
        self.admission.admit(tenant, len(jobs))
        request = _PendingRequest(jobs, tenant, Deadline.after(seconds))
        self._queue.put(request)
        if not request.done.wait(request.deadline.remaining()):
            self.count("requests_deadline_exceeded")
            raise DeadlineExceededError(
                f"deadline of {seconds:.3f}s expired before "
                f"{len(jobs)} job(s) finished; retry to reuse partial work"
            )
        if request.error is not None:
            raise request.error
        assert request.results is not None
        return request.results

    # ------------------------------------------------------------------ #
    # Solve loop
    # ------------------------------------------------------------------ #
    def _solve_loop(self) -> None:
        # Sessions running on a worker pool expose async submission
        # (solve_many_async), which lets the loop overlap micro-batches:
        # dispatch the next batch while the pool still chews on the
        # previous one, up to ``max_inflight_batches`` deep.
        overlapped = (
            self.config.max_inflight_batches > 1
            and getattr(self.session.executor, "supervises_as_pool", False)
        )
        inflight: "deque[tuple[Any, list[_PendingRequest]]]" = deque()
        try:
            while not self._stop.is_set():
                self._reap(inflight, block=False)
                if not self._gate.is_set():
                    self._gate.wait(timeout=0.05)
                    continue
                try:
                    first = self._queue.get(timeout=0.05)
                except queue.Empty:
                    continue
                if self._stop.is_set():
                    # Stopped while this get() was in flight: hand the request
                    # back for stop()'s flush to fail with a structured 503.
                    self._queue.put(first)
                    break
                if not self._gate.is_set():
                    # Paused while this get() was already in flight: hand the
                    # request back and go wait on the gate.
                    self._queue.put(first)
                    continue
                batch = [first]
                total = len(first.jobs)
                # Micro-batching: whatever is *already* queued rides along (up
                # to the cap), with no artificial latency added to gather more.
                while total < self.config.max_batch_jobs:
                    try:
                        request = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    batch.append(request)
                    total += len(request.jobs)
                try:
                    if overlapped:
                        while len(inflight) >= self.config.max_inflight_batches:
                            self._reap(inflight, block=True)
                        entry = self._dispatch_batch_async(batch)
                        if entry is not None:
                            inflight.append(entry)
                    else:
                        self._solve_batch(batch)
                except BaseException as error:  # noqa: BLE001 - loop must survive
                    for request in batch:
                        if not request.done.is_set():
                            request.error = ServiceError(
                                f"solve loop error: {type(error).__name__}: {error}"
                            )
                            self._finish(request)
        finally:
            while inflight:
                self._reap(inflight, block=True)

    # ------------------------------------------------------------------ #
    def _live_requests(
        self, batch: "list[_PendingRequest]"
    ) -> "list[_PendingRequest]":
        """Drop batch members whose deadline expired while queued."""
        live: list[_PendingRequest] = []
        for request in batch:
            if request.deadline.expired:
                # The waiting handler already answered 504; just release.
                request.error = DeadlineExceededError("deadline expired in queue")
                self._finish(request)
                continue
            live.append(request)
        return live

    def _batch_policy(self, live: "list[_PendingRequest]") -> Any:
        """The batch's retry policy: tightest remaining deadline wins.

        The whole batch runs under the most urgent request's budget: one
        solve_many call means one supervision scope, and a task that
        cannot finish inside that budget should be timed out, retried,
        and eventually failed *as data*.
        """
        remaining = max(
            0.001, min(request.deadline.remaining() for request in live)
        )
        policy = self.session.retry_policy
        task_timeout = (
            remaining
            if policy.task_timeout is None
            else min(policy.task_timeout, remaining)
        )
        return replace(policy, task_timeout=task_timeout)

    def _distribute(
        self, live: "list[_PendingRequest]", results: "list[Result]"
    ) -> None:
        """Slice batch results back onto their requests and release them."""
        self.count("batches_solved")
        offset = 0
        for request in live:
            request.results = results[offset : offset + len(request.jobs)]
            offset += len(request.jobs)
            failed = sum(1 for result in request.results if not result.ok)
            self.count("jobs_solved", len(request.jobs) - failed)
            self.count("jobs_failed", failed)
            self._finish(request)

    def _solve_batch(self, batch: "list[_PendingRequest]") -> None:
        live = self._live_requests(batch)
        if not live:
            return
        jobs = [job for request in live for job in request.jobs]
        try:
            results = self.session.solve_many(
                jobs,
                on_error="collect",
                retry_policy=self._batch_policy(live),
            )
        except ReproError as error:
            for request in live:
                request.error = error
                self._finish(request)
            return
        self._distribute(live, results)

    def _dispatch_batch_async(
        self, batch: "list[_PendingRequest]"
    ) -> "tuple[Any, list[_PendingRequest]] | None":
        """Ship one micro-batch to the pool without waiting for it."""
        live = self._live_requests(batch)
        if not live:
            return None
        jobs = [job for request in live for job in request.jobs]
        handle = self.session.solve_many_async(
            jobs,
            on_error="collect",
            retry_policy=self._batch_policy(live),
        )
        self.count("batches_overlapped")
        return handle, live

    def _reap(
        self,
        inflight: "deque[tuple[Any, list[_PendingRequest]]]",
        *,
        block: bool,
    ) -> None:
        """Settle finished in-flight batches (oldest first).

        ``block=True`` waits for the oldest batch (freeing one in-flight
        slot), then keeps reaping whatever else already finished.
        """
        while inflight and (block or inflight[0][0].done()):
            handle, live = inflight.popleft()
            block = False
            try:
                results = handle.result()
            except ReproError as error:
                for request in live:
                    request.error = error
                    self._finish(request)
                continue
            except BaseException as error:  # noqa: BLE001 - loop must survive
                for request in live:
                    if not request.done.is_set():
                        request.error = ServiceError(
                            f"solve loop error: {type(error).__name__}: {error}"
                        )
                        self._finish(request)
                continue
            self._distribute(live, results)

    def _finish(self, request: _PendingRequest) -> None:
        self.admission.release(request.tenant, len(request.jobs))
        request.done.set()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named monotonic counter (surfaced by ``/statz``)."""
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def stats(self) -> dict[str, Any]:
        """The ``/statz`` payload: queue, tenants, counters, cache stats."""
        with self._counter_lock:
            counters = dict(self._counters)
        counters["admission_rejections"] = (
            self.admission.rejections + self.admission.ledger.rejections
        )
        return {
            "ready": self.ready,
            "draining": self._draining,
            "queued_jobs": self.admission.queued_jobs,
            "tenants": self.admission.ledger.snapshot(),
            "counters": counters,
            "caches": self.session.cache_stats(),
        }


# --------------------------------------------------------------------------- #
# HTTP glue
# --------------------------------------------------------------------------- #
def _make_handler(app: ServiceApp) -> type[BaseHTTPRequestHandler]:
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-solve"

        def log_message(self, *args: Any) -> None:  # pragma: no cover
            pass  # request logging would swamp the soak tests' stderr

        def _dispatch(self, method: str) -> None:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            body = (
                self.rfile.read(length).decode("utf-8", "replace")
                if length > 0
                else ""
            )
            status, payload, extra = app.handle(
                method, self.path, body, self.headers
            )
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in extra.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server contract
            self._dispatch("POST")

    return _Handler


def serve(
    config: ServiceConfig | None = None,
    *,
    session: Session | None = None,
    ready_callback: Any = None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the solve service until SIGTERM/SIGINT; returns the exit code.

    Shutdown is a *drain*: admission closes (``/readyz`` goes 503, new
    ``/solve`` requests get structured 503s), queued jobs finish within
    ``config.drain_timeout``, then the loop stops and the socket closes.
    ``ready_callback(host, port)`` — if given — fires once the socket is
    bound, with the *actual* port (useful with ``port=0`` in tests).
    """
    config = config if config is not None else ServiceConfig()
    service = SolveService(config, session=session).start()
    app = ServiceApp(service)
    httpd = ThreadingHTTPServer(
        (config.host, config.port), _make_handler(app)
    )

    def _shutdown(signum: int, frame: Any = None) -> None:
        def _drain_and_stop() -> None:
            service.drain(config.drain_timeout)
            service.stop()
            httpd.shutdown()

        # A daemon thread, because httpd.shutdown() deadlocks when called
        # from the serve_forever thread — and signal handlers run there.
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    if ready_callback is not None:
        ready_callback(*httpd.server_address[:2])
    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        service.stop()
        httpd.server_close()
    return 0
