"""Command-line interface for the broadcast-tree reproduction.

Every subcommand is a thin constructor over the :mod:`repro.api` facade:
the shared options build one declarative :class:`~repro.api.Job`, a
process-wide :class:`~repro.api.Session` solves it (owning the LP /
platform / tree caches, so e.g. ``--compare-lp`` never re-solves a
program the command already paid for), and the command prints the lazy
:class:`~repro.api.Result` views it needs:

``python -m repro.cli tree --nodes 20 --density 0.12 --heuristic grow-tree``
    generate a platform, build a tree, print its throughput and shape;

``python -m repro.cli lp --nodes 20 --density 0.12``
    solve the steady-state LP and print the optimal throughput and the
    busiest edges of the communication graph;

``python -m repro.cli simulate --nodes 20 --density 0.12 --slices 60``
    cross-check the analysis with the discrete-event simulator;

``python -m repro.cli collective --collective multicast --targets 1,3,5``
    run any collective operation (``broadcast``, ``multicast``, ``scatter``,
    ``reduce``, ``gather``) end to end: spec-parameterised LP optimum,
    spec-aware Steiner tree, steady-state analysis and distinct-message /
    pipelined simulation cross-check;

``python -m repro.cli experiment --artefact fig4a --scale 0.1``
    regenerate one of the paper's artefacts (``fig4a``, ``fig4b``, ``fig5``,
    ``table3``) or the collective-scaling sweep (``collective``) at a chosen
    ensemble scale;

``python -m repro.cli serve --port 8642``
    run the long-lived HTTP/JSON solve service (:mod:`repro.service`):
    warm byte-budgeted caches, admission control with per-tenant quotas,
    request deadlines, and SIGTERM-drained shutdown.

Every command accepts ``--tiers SIZE`` instead of ``--nodes/--density`` to
use the Tiers-like hierarchical generator, and ``--seed`` for
reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import DynamicJob, Job, PlatformRecipe, RetryPolicy, Session, default_session
from .collectives import CollectiveSpec
from .core.registry import available_heuristics
from .dynamics import TraceSpec
from .experiments import (
    check_collective_scaling_shape,
    check_dynamic_scaling_shape,
    check_figure4_shape,
    check_figure5_shape,
    check_table3_shape,
    collective_scaling,
    dynamic_scaling,
    figure_4a,
    figure_4b,
    figure_5,
    scaled_parameters,
    table_3,
)
from .utils.ascii_plot import format_table

__all__ = ["main", "build_parser", "job_from_args"]


# --------------------------------------------------------------------------- #
# Shared option groups (argparse parent parsers)
# --------------------------------------------------------------------------- #
def _platform_options() -> argparse.ArgumentParser:
    """Options selecting the platform every subcommand works on."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--nodes", type=int, default=20, help="number of processors")
    parent.add_argument("--density", type=float, default=0.12, help="edge density")
    parent.add_argument(
        "--tiers", type=int, default=None, help="use a Tiers preset of this size instead"
    )
    parent.add_argument("--seed", type=int, default=0, help="random seed")
    parent.add_argument("--source", type=int, default=0, help="collective root node")
    return parent


def _heuristic_options() -> argparse.ArgumentParser:
    """Options selecting the tree heuristic and the port model."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--heuristic", default="grow-tree", choices=available_heuristics()
    )
    parent.add_argument("--model", default="one-port", choices=["one-port", "multi-port"])
    return parent


def _parse_targets(raw: str | None) -> tuple[int, ...] | None:
    """Parse the ``--targets`` flag (comma-separated node names)."""
    if raw is None:
        return None
    try:
        return tuple(int(item) for item in raw.split(",") if item.strip() != "")
    except ValueError:
        raise SystemExit(
            f"--targets must be a comma-separated list of node ids, got {raw!r}"
        ) from None


def job_from_args(args: argparse.Namespace, *, simulate: bool = False) -> Job:
    """Build the declarative :class:`Job` one subcommand invocation describes."""
    if args.tiers is not None:
        recipe = PlatformRecipe.of("tiers", size=args.tiers, seed=args.seed)
    else:
        recipe = PlatformRecipe.of(
            "random", num_nodes=args.nodes, density=args.density, seed=args.seed
        )
    spec = CollectiveSpec(
        getattr(args, "collective", "broadcast"),
        args.source,
        _parse_targets(getattr(args, "targets", None)),
    )
    return Job(
        recipe,
        spec,
        heuristic=getattr(args, "heuristic", "grow-tree"),
        model=getattr(args, "model", "one-port"),
        num_slices=getattr(args, "slices", 50),
        simulate=simulate,
    )


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_tree(args: argparse.Namespace, session: Session) -> int:
    result = session.solve(job_from_args(args))
    report = result.report
    print(f"platform: {result.platform}")
    print(
        f"heuristic {args.heuristic!r} ({report.model}): throughput "
        f"{report.throughput:.4f} slices/time-unit, bottleneck node {report.bottleneck!r}"
    )
    if args.compare_lp:
        print(
            f"MTP optimum {result.lp_bound:.4f} -> relative performance "
            f"{result.relative_performance:.1%}"
        )
    if args.show_tree:
        print(result.tree.describe())
    return 0


def _cmd_lp(args: argparse.Namespace, session: Session) -> int:
    result = session.solve(job_from_args(args))
    solution = result.lp_solution
    print(f"platform: {result.platform}")
    print(solution.summary())
    print("\nbusiest edges (slices per time unit):")
    print(
        format_table(
            ["edge", "n_uv"],
            [[str(edge), value] for edge, value in solution.busiest_edges(args.top)],
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace, session: Session) -> int:
    result = session.solve(job_from_args(args, simulate=True))
    simulation = result.simulation
    print(f"platform: {result.platform}")
    print(
        format_table(
            ["metric", "value"],
            [
                ["analytical throughput", simulation.analytical_throughput],
                ["simulated throughput", simulation.measured_throughput],
                ["relative error", simulation.relative_error()],
                ["makespan", simulation.makespan],
                ["effective throughput", simulation.effective_throughput],
            ],
            float_format="{:.4f}",
        )
    )
    return 0


def _cmd_collective(args: argparse.Namespace, session: Session) -> int:
    result = session.solve(job_from_args(args, simulate=True))
    job = result.job
    print(f"platform: {result.platform}")
    print(
        f"collective: {job.collective.describe()}  "
        f"(heuristic {job.heuristic!r}, {result.report.model})"
    )
    print(result.lp_solution.summary())
    print(
        format_table(
            ["metric", "value"],
            [
                ["LP optimum (multi-tree)", result.lp_bound],
                ["tree throughput (analytical)", result.throughput],
                ["tree throughput (simulated)", result.simulated_throughput],
                ["simulation relative error", result.simulation_error],
                ["relative performance", result.relative_performance],
                ["covered nodes", float(len(result.tree.nodes))],
            ],
            float_format="{:.4f}",
        )
    )
    if args.show_tree:
        print(result.tree.describe())
    return 0


def _cmd_dynamic(args: argparse.Namespace, session: Session) -> int:
    if args.tiers is not None:
        recipe = PlatformRecipe.of("tiers", size=args.tiers, seed=args.seed)
    else:
        recipe = PlatformRecipe.of(
            "random", num_nodes=args.nodes, density=args.density, seed=args.seed
        )
    trace = TraceSpec(
        seed=args.trace_seed,
        horizon=args.horizon,
        window=args.window,
        drift=args.drift,
        drift_rho=args.drift_rho,
        congestion_rate=args.congestion,
        churn_rate=args.churn,
    )
    job = DynamicJob(
        recipe,
        trace=trace,
        source=args.source,
        heuristic=args.heuristic,
        model=args.model,
        threshold=args.threshold,
        replan_cost=args.replan_cost,
    )
    result = session.solve_dynamic(job)
    print(result.summary())
    return 0


_ARTEFACTS = {
    "fig4a": (figure_4a, check_figure4_shape),
    "fig4b": (figure_4b, check_figure4_shape),
    "fig5": (figure_5, check_figure5_shape),
    "table3": (table_3, check_table3_shape),
    "collective": (collective_scaling, check_collective_scaling_shape),
    "dynamic": (dynamic_scaling, check_dynamic_scaling_shape),
}


def _cmd_experiment(args: argparse.Namespace, session: Session) -> int:
    parameters = scaled_parameters(args.scale, seed=args.seed)
    build, check = _ARTEFACTS[args.artefact]
    retry_policy = None
    if args.retries is not None or args.task_timeout is not None:
        retry_policy = RetryPolicy(
            retries=args.retries if args.retries is not None else 2,
            task_timeout=args.task_timeout,
        )
    failures: list = []
    artefact = build(
        parameters,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        keep_going=args.keep_going,
        retry_policy=retry_policy,
        failures=failures,
    )
    print(artefact.render())
    result = check(artefact)
    print()
    print(result.render())
    if failures:
        print()
        print(f"{len(failures)} task(s) failed permanently:")
        for record in failures:
            print(f"  {record.describe()}")
    return 0 if result.ok and not failures else 1


def _cmd_serve(args: argparse.Namespace, session: Session) -> int:
    # Imported here so every other subcommand stays free of the service
    # stack; the shared default session is deliberately NOT reused — the
    # server owns a bounded session sized by its own flags.
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_queued_jobs=args.max_queue,
        tenant_quota=args.tenant_quota,
        default_deadline=args.deadline,
        drain_timeout=args.drain_timeout,
        jobs=args.jobs,
        backend=args.backend,
        max_inflight_batches=args.max_inflight_batches,
        cache_dir=args.cache_dir,
        max_cache_entries=args.max_cache_entries,
        max_cache_bytes=args.max_cache_bytes,
    )

    def announce(host: str, port: int) -> None:
        print(f"repro solve service listening on http://{host}:{port}", flush=True)

    return serve(config, ready_callback=announce)


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcast trees for heterogeneous platforms (IPPS 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    platform_options = _platform_options()
    heuristic_options = _heuristic_options()

    tree = commands.add_parser(
        "tree",
        parents=[platform_options, heuristic_options],
        help="build a broadcast tree with a heuristic",
    )
    tree.add_argument("--compare-lp", action="store_true", help="also solve the LP reference")
    tree.add_argument("--show-tree", action="store_true", help="print the tree structure")
    tree.set_defaults(handler=_cmd_tree)

    lp = commands.add_parser(
        "lp", parents=[platform_options], help="solve the steady-state LP (MTP optimum)"
    )
    lp.add_argument("--top", type=int, default=8, help="number of busiest edges to show")
    lp.set_defaults(handler=_cmd_lp)

    simulate = commands.add_parser(
        "simulate",
        parents=[platform_options, heuristic_options],
        help="discrete-event simulation of a tree",
    )
    simulate.add_argument("--slices", type=int, default=60, help="number of message slices")
    simulate.set_defaults(handler=_cmd_simulate)

    collective = commands.add_parser(
        "collective",
        parents=[platform_options, heuristic_options],
        help="run a collective operation (LP + tree + simulation)",
    )
    collective.add_argument(
        "--collective",
        default="broadcast",
        choices=["broadcast", "multicast", "scatter", "reduce", "gather"],
        help="collective kind",
    )
    collective.add_argument(
        "--targets",
        default=None,
        help="comma-separated target node ids (default: all other nodes)",
    )
    collective.add_argument("--slices", type=int, default=60, help="simulated rounds")
    collective.add_argument("--show-tree", action="store_true", help="print the tree structure")
    collective.set_defaults(handler=_cmd_collective)

    dynamic = commands.add_parser(
        "dynamic",
        parents=[platform_options, heuristic_options],
        help="replay a dynamic platform trace and compare re-scheduling policies",
    )
    dynamic.add_argument(
        "--trace-seed", type=int, default=0, help="seed of the platform trace"
    )
    dynamic.add_argument(
        "--horizon", type=int, default=8, help="number of trace windows (epochs)"
    )
    dynamic.add_argument(
        "--window", type=float, default=1.0, help="duration of one trace window"
    )
    dynamic.add_argument(
        "--drift", type=float, default=0.15, help="per-window log-bandwidth drift scale"
    )
    dynamic.add_argument(
        "--drift-rho", type=float, default=0.6, help="AR(1) persistence of the drift"
    )
    dynamic.add_argument(
        "--congestion",
        type=float,
        default=0.2,
        help="expected congestion episodes per window",
    )
    dynamic.add_argument(
        "--churn", type=float, default=0.0, help="probability a node leaves per window"
    )
    dynamic.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative ratio drift that triggers an adaptive re-plan",
    )
    dynamic.add_argument(
        "--replan-cost",
        type=float,
        default=0.1,
        help="fraction of an epoch's throughput charged per re-plan",
    )
    dynamic.set_defaults(handler=_cmd_dynamic)

    experiment = commands.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument("--artefact", choices=sorted(_ARTEFACTS), default="fig4a")
    experiment.add_argument(
        "--scale", type=float, default=0.1, help="ensemble scale (1.0 = full paper setup)"
    )
    experiment.add_argument("--seed", type=int, default=None, help="override the ensemble seed")
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the ensemble evaluation (1 = serial; "
            "> 1 selects the warm worker pool, falling back to the "
            "batched serial path on single-CPU hosts)"
        ),
    )
    experiment.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk ensemble result cache",
    )
    experiment.add_argument(
        "--retries",
        type=int,
        default=None,
        help="extra attempts per task before its failure is permanent",
    )
    experiment.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt wall-clock budget per task, in seconds",
    )
    experiment.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "complete the campaign on permanent task failures and report "
            "them as structured error records (exit code 1); successful "
            "tasks are written through to --cache-dir, so re-running "
            "resumes with only the failed tasks"
        ),
    )
    experiment.set_defaults(handler=_cmd_experiment)

    serve = commands.add_parser(
        "serve", help="run the long-lived HTTP/JSON solve service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="total jobs admitted but not yet solved before 429s",
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=32,
        help="per-tenant in-flight job ceiling (X-Tenant header)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-request deadline, seconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="how long SIGTERM waits for in-flight jobs, seconds",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "session worker processes (1 = serial; > 1 selects the warm "
            "worker pool and overlapped micro-batch dispatch)"
        ),
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "process", "warm-pool"),
        default=None,
        help="force a session executor backend instead of the --jobs auto-choice",
    )
    serve.add_argument(
        "--max-inflight-batches",
        type=int,
        default=2,
        help=(
            "micro-batches allowed in flight on the worker pool at once "
            "(1 disables overlapped dispatch)"
        ),
    )
    serve.add_argument(
        "--cache-dir", default=None, help="on-disk result cache directory"
    )
    serve.add_argument(
        "--max-cache-entries",
        type=int,
        default=512,
        help="per-cache entry bound of the server session",
    )
    serve.add_argument(
        "--max-cache-bytes",
        type=int,
        default=256 * 1024 * 1024,
        help="shared byte budget across the server session's caches",
    )
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None, *, session: Session | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``session`` overrides the process-wide default
    :class:`~repro.api.Session` (tests use this to observe cache sharing
    between the CLI and programmatic solves).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args, session if session is not None else default_session())


if __name__ == "__main__":
    sys.exit(main())
