"""Command-line interface for the broadcast-tree reproduction.

The CLI exposes the main workflows without writing Python:

``python -m repro.cli tree --nodes 20 --density 0.12 --heuristic grow-tree``
    generate a platform, build a tree, print its throughput and shape;

``python -m repro.cli lp --nodes 20 --density 0.12``
    solve the steady-state LP and print the optimal throughput and the
    busiest edges of the communication graph;

``python -m repro.cli simulate --nodes 20 --density 0.12 --slices 60``
    cross-check the analysis with the discrete-event simulator;

``python -m repro.cli collective --collective multicast --targets 1,3,5``
    run any collective operation (``broadcast``, ``multicast``, ``scatter``,
    ``reduce``, ``gather``) end to end: spec-parameterised LP optimum,
    spec-aware Steiner tree, steady-state analysis and distinct-message /
    pipelined simulation cross-check;

``python -m repro.cli experiment --artefact fig4a --scale 0.1``
    regenerate one of the paper's artefacts (``fig4a``, ``fig4b``, ``fig5``,
    ``table3``) or the collective-scaling sweep (``collective``) at a chosen
    ensemble scale.

Every command accepts ``--tiers SIZE`` instead of ``--nodes/--density`` to
use the Tiers-like hierarchical generator, and ``--seed`` for
reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.throughput import collective_throughput, tree_throughput
from .collectives import CollectiveSpec
from .core.registry import (
    available_heuristics,
    build_broadcast_tree,
    build_collective_tree,
    get_heuristic,
)
from .experiments import (
    check_collective_scaling_shape,
    check_figure4_shape,
    check_figure5_shape,
    check_table3_shape,
    collective_scaling,
    figure_4a,
    figure_4b,
    figure_5,
    scaled_parameters,
    table_3,
)
from .lp.solver import solve_collective_lp, solve_steady_state_lp
from .models.port_models import get_port_model
from .platform.generators.random_graph import generate_random_platform
from .platform.generators.tiers import generate_tiers_platform
from .platform.graph import Platform
from .simulation.broadcast import simulate_broadcast
from .simulation.collective import simulate_collective
from .utils.ascii_plot import format_table

__all__ = ["main", "build_parser"]


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=20, help="number of processors")
    parser.add_argument("--density", type=float, default=0.12, help="edge density")
    parser.add_argument(
        "--tiers", type=int, default=None, help="use a Tiers preset of this size instead"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--source", type=int, default=0, help="broadcast source node")


def _make_platform(args: argparse.Namespace) -> Platform:
    if args.tiers is not None:
        return generate_tiers_platform(args.tiers, seed=args.seed)
    return generate_random_platform(
        num_nodes=args.nodes, density=args.density, seed=args.seed
    )


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_tree(args: argparse.Namespace) -> int:
    platform = _make_platform(args)
    model = get_port_model(args.model)
    tree = build_broadcast_tree(
        platform, args.source, heuristic=args.heuristic, model=model, strict_model=False
    )
    report = tree_throughput(tree, model)
    print(f"platform: {platform}")
    print(
        f"heuristic {args.heuristic!r} ({model.name}): throughput "
        f"{report.throughput:.4f} slices/time-unit, bottleneck node {report.bottleneck!r}"
    )
    if args.compare_lp:
        optimum = solve_steady_state_lp(platform, args.source).throughput
        print(f"MTP optimum {optimum:.4f} -> relative performance {report.throughput / optimum:.1%}")
    if args.show_tree:
        print(tree.describe())
    return 0


def _cmd_lp(args: argparse.Namespace) -> int:
    platform = _make_platform(args)
    solution = solve_steady_state_lp(platform, args.source)
    print(f"platform: {platform}")
    print(solution.summary())
    print("\nbusiest edges (slices per time unit):")
    print(
        format_table(
            ["edge", "n_uv"],
            [[str(edge), value] for edge, value in solution.busiest_edges(args.top)],
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    platform = _make_platform(args)
    model = get_port_model(args.model)
    tree = build_broadcast_tree(
        platform, args.source, heuristic=args.heuristic, model=model, strict_model=False
    )
    result = simulate_broadcast(
        tree, num_slices=args.slices, model=model, record_trace=False
    )
    print(f"platform: {platform}")
    print(
        format_table(
            ["metric", "value"],
            [
                ["analytical throughput", result.analytical_throughput],
                ["simulated throughput", result.measured_throughput],
                ["relative error", result.relative_error()],
                ["makespan", result.makespan],
                ["effective throughput", result.effective_throughput],
            ],
            float_format="{:.4f}",
        )
    )
    return 0


def _parse_targets(raw: str | None) -> list[int] | None:
    """Parse the ``--targets`` flag (comma-separated node names)."""
    if raw is None:
        return None
    try:
        return [int(item) for item in raw.split(",") if item.strip() != ""]
    except ValueError:
        raise SystemExit(
            f"--targets must be a comma-separated list of node ids, got {raw!r}"
        ) from None


def _cmd_collective(args: argparse.Namespace) -> int:
    platform = _make_platform(args)
    model = get_port_model(args.model)
    targets = _parse_targets(args.targets)
    spec = CollectiveSpec(args.collective, args.source, targets)
    solution = solve_collective_lp(platform, spec)
    heuristic = get_heuristic(args.heuristic)
    # The LP-guided heuristics would otherwise re-solve the identical LP
    # inside build(); share this command's solution with them.
    extra = {"lp_solution": solution} if heuristic.uses_lp_solution else {}
    tree = build_collective_tree(
        platform, spec, heuristic=heuristic, model=model, strict_model=False, **extra
    )
    report = collective_throughput(tree, spec, model)
    result = simulate_collective(
        tree, spec, num_slices=args.slices, model=model, record_trace=False
    )
    print(f"platform: {platform}")
    print(f"collective: {spec.describe()}  (heuristic {args.heuristic!r}, {model.name})")
    print(solution.summary())
    print(
        format_table(
            ["metric", "value"],
            [
                ["LP optimum (multi-tree)", solution.throughput],
                ["tree throughput (analytical)", report.throughput],
                ["tree throughput (simulated)", result.measured_throughput],
                ["simulation relative error", result.relative_error()],
                ["relative performance", report.throughput / solution.throughput],
                ["covered nodes", float(len(tree.nodes))],
            ],
            float_format="{:.4f}",
        )
    )
    if args.show_tree:
        print(tree.describe())
    return 0


_ARTEFACTS = {
    "fig4a": (figure_4a, check_figure4_shape, "random"),
    "fig4b": (figure_4b, check_figure4_shape, "random"),
    "fig5": (figure_5, check_figure5_shape, "random"),
    "table3": (table_3, check_table3_shape, "tiers"),
    "collective": (collective_scaling, check_collective_scaling_shape, "collective"),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    parameters = scaled_parameters(args.scale, seed=args.seed)
    build, check, _kind = _ARTEFACTS[args.artefact]
    artefact = build(parameters, jobs=args.jobs, cache_dir=args.cache_dir)
    print(artefact.render())
    result = check(artefact)
    print()
    print(result.render())
    return 0 if result.ok else 1


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcast trees for heterogeneous platforms (IPPS 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tree = commands.add_parser("tree", help="build a broadcast tree with a heuristic")
    _add_platform_arguments(tree)
    tree.add_argument(
        "--heuristic", default="grow-tree", choices=available_heuristics()
    )
    tree.add_argument("--model", default="one-port", choices=["one-port", "multi-port"])
    tree.add_argument("--compare-lp", action="store_true", help="also solve the LP reference")
    tree.add_argument("--show-tree", action="store_true", help="print the tree structure")
    tree.set_defaults(handler=_cmd_tree)

    lp = commands.add_parser("lp", help="solve the steady-state LP (MTP optimum)")
    _add_platform_arguments(lp)
    lp.add_argument("--top", type=int, default=8, help="number of busiest edges to show")
    lp.set_defaults(handler=_cmd_lp)

    simulate = commands.add_parser("simulate", help="discrete-event simulation of a tree")
    _add_platform_arguments(simulate)
    simulate.add_argument(
        "--heuristic", default="grow-tree", choices=available_heuristics()
    )
    simulate.add_argument("--model", default="one-port", choices=["one-port", "multi-port"])
    simulate.add_argument("--slices", type=int, default=60, help="number of message slices")
    simulate.set_defaults(handler=_cmd_simulate)

    collective = commands.add_parser(
        "collective", help="run a collective operation (LP + tree + simulation)"
    )
    _add_platform_arguments(collective)
    collective.add_argument(
        "--collective",
        default="broadcast",
        choices=["broadcast", "multicast", "scatter", "reduce", "gather"],
        help="collective kind",
    )
    collective.add_argument(
        "--targets",
        default=None,
        help="comma-separated target node ids (default: all other nodes)",
    )
    collective.add_argument(
        "--heuristic", default="grow-tree", choices=available_heuristics()
    )
    collective.add_argument("--model", default="one-port", choices=["one-port", "multi-port"])
    collective.add_argument("--slices", type=int, default=60, help="simulated rounds")
    collective.add_argument("--show-tree", action="store_true", help="print the tree structure")
    collective.set_defaults(handler=_cmd_collective)

    experiment = commands.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument("--artefact", choices=sorted(_ARTEFACTS), default="fig4a")
    experiment.add_argument(
        "--scale", type=float, default=0.1, help="ensemble scale (1.0 = full paper setup)"
    )
    experiment.add_argument("--seed", type=int, default=None, help="override the ensemble seed")
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the ensemble evaluation (1 = serial)",
    )
    experiment.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk ensemble result cache",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
