"""Per-transfer timing decomposition used by the discrete-event simulator.

Section 2.1 of the paper decomposes one point-to-point transfer into three
occupation intervals: the sender's port, the link, and the receiver's port.
:func:`transfer_timing` evaluates those three durations for a given port
model, and :class:`TransferTiming` packages them together with the derived
quantities the simulator needs (when the receiver actually obtains the data,
when the sender may start its next transfer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..platform.graph import Platform
from .port_models import PortModel

__all__ = ["TransferTiming", "transfer_timing"]

NodeName = Any


@dataclass(frozen=True)
class TransferTiming:
    """Timing decomposition of one transfer ``P_u -> P_v``.

    Attributes
    ----------
    sender_busy:
        Duration the sender's output port is blocked (``send_{u,v}``).
    link_busy:
        Total link occupation (``T_{u,v}``); the data is available at the
        receiver ``link_busy`` after the transfer starts.
    receiver_busy:
        Duration the receiver's input port is blocked at the *end* of the
        transfer (``recv_{u,v}``); the paper's framework places the receive
        occupation in the interval ``[T - recv, T]``.
    """

    sender_busy: float
    link_busy: float
    receiver_busy: float

    def __post_init__(self) -> None:
        if self.sender_busy < 0 or self.link_busy < 0 or self.receiver_busy < 0:
            raise ValueError("occupation times must be non-negative")
        # Allow tiny floating-point slack when comparing against the link time.
        slack = 1e-12 + 1e-9 * self.link_busy
        if self.sender_busy > self.link_busy + slack:
            raise ValueError(
                f"sender occupation {self.sender_busy} exceeds link occupation {self.link_busy}"
            )
        if self.receiver_busy > self.link_busy + slack:
            raise ValueError(
                f"receiver occupation {self.receiver_busy} exceeds link occupation {self.link_busy}"
            )

    @property
    def completion_offset(self) -> float:
        """Offset from transfer start to data availability at the receiver."""
        return self.link_busy

    @property
    def receiver_busy_start_offset(self) -> float:
        """Offset from transfer start to the start of the receive occupation."""
        return self.link_busy - self.receiver_busy


def transfer_timing(
    model: PortModel,
    platform: Platform,
    source: NodeName,
    target: NodeName,
    size: float | None = None,
) -> TransferTiming:
    """Compute the :class:`TransferTiming` of one transfer under ``model``."""
    return TransferTiming(
        sender_busy=model.sender_busy_time(platform, source, target, size),
        link_busy=model.link_busy_time(platform, source, target, size),
        receiver_busy=model.receiver_busy_time(platform, source, target, size),
    )
