"""Communication port models (Section 2 of the paper).

Two families of models are used throughout the paper:

* the **bidirectional one-port model** (Section 2.3): a processor is
  involved in at most one send *and* at most one receive at any time; both
  endpoints are blocked for the whole link occupation ``T_{u,v}``;
* the **multi-port model** (Sections 2.2 and 3.2): a processor pays a
  per-send overhead ``send_u`` which is serialised, but the link
  occupations of consecutive sends may overlap, so the steady-state period
  of a node with children ``v_1..v_k`` is
  ``max(k * send_u, max_i T_{u,v_i})``.

The classes below carry the model-specific arithmetic so that heuristics,
analysis and simulation can all be written once and parameterised by the
model.  All of them work with *per-slice* quantities: ``size`` defaults to
the platform's slice size.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Any, Sequence

from ..exceptions import PlatformError
from ..platform.graph import Platform

__all__ = ["PortModelKind", "PortModel", "OnePortModel", "MultiPortModel", "get_port_model"]

NodeName = Any
#: One outgoing (or incoming) steady-state transfer of a node:
#: ``(peer, transfer_time, multiplicity)`` where ``multiplicity`` is the
#: number of distinct message copies crossing the corresponding edge per
#: broadcast period (1 for plain tree edges, possibly more when a logical
#: transfer is routed through intermediate links, as in the binomial
#: heuristic).
Transfer = tuple[NodeName, float, int]


class PortModelKind(str, Enum):
    """Enumeration of the supported port models."""

    ONE_PORT = "one-port"
    MULTI_PORT = "multi-port"


class PortModel(ABC):
    """Common interface of the port models."""

    #: Model identifier used in reports and the heuristic registry.
    name: str = "abstract"
    kind: PortModelKind

    # ------------------------------------------------------------------ #
    # Edge-level quantities
    # ------------------------------------------------------------------ #
    def edge_weight(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """The edge weight ``T_{u,v}`` used by the tree heuristics."""
        return platform.transfer_time(source, target, size)

    def edge_weight_map(
        self, platform: Platform, size: float | None = None
    ) -> dict[tuple[NodeName, NodeName], float]:
        """``{edge: edge_weight}`` over all platform edges, insertion order.

        Served in one shot from the platform's compiled arrays when the
        model uses the plain transfer time (the default); models overriding
        :meth:`edge_weight` transparently fall back to the per-edge loop.
        """
        if type(self).edge_weight is PortModel.edge_weight:
            return dict(platform.compiled(size).edge_weight_map)
        return {
            (u, v): self.edge_weight(platform, u, v, size) for u, v in platform.edges
        }

    @abstractmethod
    def sender_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """Time the sender's output port is blocked by one transfer."""

    @abstractmethod
    def receiver_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """Time the receiver's input port is blocked by one transfer."""

    def link_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        """Total link occupation of one transfer (``T_{u,v}``)."""
        return platform.transfer_time(source, target, size)

    # ------------------------------------------------------------------ #
    # Node-level steady-state period
    # ------------------------------------------------------------------ #
    @abstractmethod
    def node_period(
        self,
        platform: Platform,
        node: NodeName,
        outgoing: Sequence[Transfer],
        incoming: Sequence[Transfer] = (),
        size: float | None = None,
    ) -> float:
        """Minimum time between consecutive slices at ``node``.

        ``outgoing`` (resp. ``incoming``) lists the steady-state transfers
        the node performs as a sender (resp. receiver) for every broadcast
        period.  The steady-state throughput of a broadcast structure is the
        inverse of the maximum node period (see
        :func:`repro.analysis.throughput.tree_throughput`).
        """

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class OnePortModel(PortModel):
    """Bidirectional one-port model.

    Sends are serialised on the output port, receives on the input port,
    and each transfer blocks both endpoints for the full link occupation
    ``T_{u,v}`` (``send = recv = T``).
    """

    name = "one-port"
    kind = PortModelKind.ONE_PORT

    def sender_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        return platform.transfer_time(source, target, size)

    def receiver_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        return platform.transfer_time(source, target, size)

    def node_period(
        self,
        platform: Platform,
        node: NodeName,
        outgoing: Sequence[Transfer],
        incoming: Sequence[Transfer] = (),
        size: float | None = None,
    ) -> float:
        out_time = sum(time * count for _, time, count in outgoing)
        in_time = sum(time * count for _, time, count in incoming)
        return max(out_time, in_time)


class MultiPortModel(PortModel):
    """Multi-port model with serialised per-send overhead.

    Each send blocks the sender's network interface for ``send_u`` time
    units only (Equation 1 of the paper, with the simplification of Bar-Noy
    et al. that the overhead depends only on the sender); the remaining link
    occupation overlaps with the following sends.  The steady-state period
    of a node is therefore

    ``max(number_of_sends * send_u, max over outgoing edges of (count * T))``

    plus, when a receive overhead is configured on the node, the symmetric
    ``number_of_receives * recv_u`` term.

    Parameters
    ----------
    send_fraction:
        Used to derive ``send_u`` when the node record does not carry an
        explicit ``send_overhead``: ``send_u = send_fraction * min_w T_{u,w}``
        (Section 5.1 sets the fraction to 0.8).
    """

    name = "multi-port"
    kind = PortModelKind.MULTI_PORT

    def __init__(self, send_fraction: float = 0.8) -> None:
        if not 0.0 < send_fraction <= 1.0:
            raise PlatformError(f"send_fraction must be in (0, 1], got {send_fraction}")
        self.send_fraction = send_fraction

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MultiPortModel(send_fraction={self.send_fraction})"

    # ------------------------------------------------------------------ #
    def node_send_time(
        self, platform: Platform, node: NodeName, size: float | None = None
    ) -> float:
        """Per-send overhead ``send_u`` of ``node``.

        Uses the explicit ``send_overhead`` of the node record when present,
        otherwise falls back to ``send_fraction * min_w T_{node,w}``.
        Nodes without outgoing links (pure leaves) have a zero overhead.
        """
        record = platform.node(node)
        if record.send_overhead is not None:
            return record.send_overhead
        if platform.out_degree(node) == 0:
            return 0.0
        return self.send_fraction * platform.min_out_transfer_time(node, size)

    def node_send_times(
        self, platform: Platform, size: float | None = None
    ) -> dict[NodeName, float]:
        """Per-send overhead of every node with outgoing links.

        Vectorised equivalent of calling :meth:`node_send_time` for each
        node, computed from the compiled platform arrays (the multi-port
        heuristics query this map once per build instead of touching the
        graph per node).  Subclasses overriding :meth:`node_send_time` are
        transparently served by the per-node loop instead.
        """
        if type(self).node_send_time is not MultiPortModel.node_send_time:
            return {
                node: self.node_send_time(platform, node, size)
                for node in platform.nodes
                if platform.out_degree(node) > 0
            }
        view = platform.compiled(size)
        times = view.node_send_times(self.send_fraction)
        return {
            name: float(times[i])
            for i, name in enumerate(view.node_names)
            if view.out_degrees[i] > 0
        }

    def node_recv_time(
        self, platform: Platform, node: NodeName, size: float | None = None
    ) -> float:
        """Per-receive overhead ``recv_u`` of ``node`` (0 unless configured)."""
        record = platform.node(node)
        return record.recv_overhead if record.recv_overhead is not None else 0.0

    def sender_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        return min(
            self.node_send_time(platform, source, size),
            platform.transfer_time(source, target, size),
        )

    def receiver_busy_time(
        self, platform: Platform, source: NodeName, target: NodeName, size: float | None = None
    ) -> float:
        return min(
            self.node_recv_time(platform, target, size),
            platform.transfer_time(source, target, size),
        )

    def node_period(
        self,
        platform: Platform,
        node: NodeName,
        outgoing: Sequence[Transfer],
        incoming: Sequence[Transfer] = (),
        size: float | None = None,
    ) -> float:
        if not outgoing and not incoming:
            return 0.0
        period = 0.0
        if outgoing:
            send_time = self.node_send_time(platform, node, size)
            total_sends = sum(count for _, _, count in outgoing)
            period = max(period, total_sends * send_time)
            period = max(period, max(time * count for _, time, count in outgoing))
        if incoming:
            recv_time = self.node_recv_time(platform, node, size)
            total_recvs = sum(count for _, _, count in incoming)
            period = max(period, total_recvs * recv_time)
            # Each incoming edge must deliver its copies within one period.
            period = max(period, max(time * count for _, time, count in incoming))
        return period


def get_port_model(model: PortModel | PortModelKind | str | None) -> PortModel:
    """Normalise a model specification into a :class:`PortModel` instance.

    Accepts an existing instance, a :class:`PortModelKind`, one of the
    strings ``"one-port"`` / ``"multi-port"``, or ``None`` (one-port, the
    paper's default).
    """
    if model is None:
        return OnePortModel()
    if isinstance(model, PortModel):
        return model
    kind = PortModelKind(model)
    if kind is PortModelKind.ONE_PORT:
        return OnePortModel()
    return MultiPortModel()
