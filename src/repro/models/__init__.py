"""Communication port models (one-port, multi-port) and transfer timing."""

from .port_models import (
    MultiPortModel,
    OnePortModel,
    PortModel,
    PortModelKind,
    get_port_model,
)
from .timing import TransferTiming, transfer_timing

__all__ = [
    "MultiPortModel",
    "OnePortModel",
    "PortModel",
    "PortModelKind",
    "get_port_model",
    "TransferTiming",
    "transfer_timing",
]
