"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch library-specific failures without masking programming errors such
as :class:`TypeError` or :class:`KeyError` raised by misuse of Python itself.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PlatformError",
    "InvalidLinkError",
    "DisconnectedPlatformError",
    "TreeError",
    "NotASpanningTreeError",
    "HeuristicError",
    "UnknownHeuristicError",
    "LPError",
    "InfeasibleLPError",
    "SimulationError",
    "ExperimentError",
    "ConfigError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "JobFailedError",
    "ServiceError",
    "AdmissionError",
    "DeadlineExceededError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class PlatformError(ReproError):
    """Raised for invalid platform graphs (bad nodes, links or parameters)."""


class InvalidLinkError(PlatformError):
    """Raised when a link references unknown nodes or has invalid costs."""


class DisconnectedPlatformError(PlatformError):
    """Raised when an operation requires all nodes to be reachable from the
    source but the platform graph does not provide that reachability."""


class TreeError(ReproError):
    """Raised for invalid broadcast-tree structures."""


class NotASpanningTreeError(TreeError):
    """Raised when a structure claimed to be a spanning broadcast tree is
    not one (missing nodes, several parents, cycles, unknown edges...)."""


class HeuristicError(ReproError):
    """Raised when a heuristic cannot produce a valid broadcast tree."""


class UnknownHeuristicError(HeuristicError, KeyError):
    """Raised when looking up an unregistered heuristic name."""


class LPError(ReproError):
    """Raised when the steady-state linear program cannot be built/solved."""


class InfeasibleLPError(LPError):
    """Raised when the LP solver reports an infeasible or unbounded model."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator on inconsistent schedules."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on invalid configurations."""


class ConfigError(ExperimentError):
    """Raised for invalid user-supplied configuration values: malformed
    :class:`~repro.api.Job` fields, out-of-range experiment parameters,
    unparsable environment overrides."""


class TaskTimeoutError(ReproError):
    """Raised when a supervised task exceeds its per-attempt timeout
    (:attr:`~repro.runtime.RetryPolicy.task_timeout`)."""


class WorkerCrashError(ReproError):
    """Raised when a worker process died (broken pool) while running a
    supervised task, exhausting the pool-respawn budget."""


class JobFailedError(ReproError):
    """Raised when accessing a metric of a failed :class:`~repro.api.Result`.

    The structured failure record is available as :attr:`failure`
    (a :class:`~repro.runtime.TaskFailure`).
    """

    def __init__(self, message: str, failure: object | None = None) -> None:
        super().__init__(message)
        self.failure = failure


class ServiceError(ReproError):
    """Base class of the solve-service request failures (:mod:`repro.service`).

    Every subclass carries the HTTP status its structured JSON error body
    is served with, so the transport layer never has to guess."""

    status = 500


class AdmissionError(ServiceError):
    """Raised when admission control rejects a request (queue full or
    tenant quota exhausted).  Served as HTTP 429 with a ``Retry-After``
    hint of :attr:`retry_after` seconds."""

    status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline expires before its jobs finish.
    Served as HTTP 504; the solve may still complete in the background and
    warm the caches for a retry."""

    status = 504


class InjectedFault(ReproError):
    """Base class of the deterministic faults raised by :mod:`repro.faults`.

    Deriving from :class:`ReproError` keeps the error-handling contract
    intact under fault injection: ``except ReproError`` catches injected
    failures exactly like organic ones."""
