#!/usr/bin/env python3
"""Quickstart: build a broadcast tree on a heterogeneous platform.

This example walks through the full pipeline with the ``repro.api`` facade:

1. describe the platform declaratively (a named generator recipe with the
   paper's Table 2 parameters),
2. describe one solve per paper heuristic as a :class:`repro.Job`,
3. batch-solve them through one :class:`repro.Session` — the multiple-tree
   optimal throughput (the steady-state LP) is solved once and shared by
   every job as the reference,
4. compare each tree's pipelined throughput against the optimum.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import PAPER_ONE_PORT_HEURISTICS, Job, PlatformRecipe, Session
from repro.utils.ascii_plot import format_table


def main() -> None:
    # 1. A 20-node platform with ~12 % edge density; link rates are Gaussian
    #    (mean 100 MB/s, deviation 20 MB/s) and each edge weight is the time
    #    to transfer one 100 MB message slice.  The recipe is declarative:
    #    the session instantiates (and shares) the actual graph.
    recipe = PlatformRecipe.of("random", num_nodes=20, density=0.12, seed=42)

    # 2. One job per paper heuristic, all on the same platform and source.
    jobs = [
        Job.broadcast(recipe, source=0, heuristic=name)
        for name in PAPER_ONE_PORT_HEURISTICS
    ]

    # 3. One session = one LP solve, one platform instance, shared caches.
    session = Session()
    results = session.solve_many(jobs)
    print(f"platform: {results[0].platform}")
    print(f"LP reference: {results[0].lp_solution.summary()}\n")

    # 4. Compare the trees against the multiple-tree optimum.
    rows = [
        [
            result.job.heuristic,
            result.throughput,
            result.relative_performance,
            result.tree.height,
            str(result.report.bottleneck),
        ]
        for result in results
    ]
    rows.sort(key=lambda row: -row[1])
    print(
        format_table(
            ["heuristic", "throughput", "vs optimum", "tree height", "bottleneck node"],
            rows,
        )
    )

    # Show the best tree (already cached in the session — no rebuild).
    best = rows[0][0]
    tree = session.solve(Job.broadcast(recipe, source=0, heuristic=best)).tree
    print(f"\nbest single tree ({best}):")
    print(tree.describe())


if __name__ == "__main__":
    main()
