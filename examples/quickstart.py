#!/usr/bin/env python3
"""Quickstart: build a broadcast tree on a heterogeneous platform.

This example walks through the full pipeline in ~40 lines:

1. generate a random heterogeneous platform (paper Table 2 parameters),
2. compute the multiple-tree optimal throughput with the steady-state LP,
3. build single broadcast trees with the paper's heuristics,
4. compare their pipelined throughput against the optimum.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    PAPER_ONE_PORT_HEURISTICS,
    build_broadcast_tree,
    generate_random_platform,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.utils.ascii_plot import format_table


def main() -> None:
    # 1. A 20-node platform with ~12 % edge density; link rates are Gaussian
    #    (mean 100 MB/s, deviation 20 MB/s) and each edge weight is the time
    #    to transfer one 100 MB message slice.
    platform = generate_random_platform(num_nodes=20, density=0.12, seed=42)
    source = 0
    print(f"platform: {platform}")

    # 2. The MTP optimum: what several simultaneous broadcast trees could
    #    achieve.  This is the reference every heuristic is compared to.
    solution = solve_steady_state_lp(platform, source)
    print(f"LP reference: {solution.summary()}\n")

    # 3 + 4. Build one tree per heuristic and measure its throughput.
    rows = []
    for name in PAPER_ONE_PORT_HEURISTICS:
        tree = build_broadcast_tree(platform, source, heuristic=name)
        report = tree_throughput(tree)
        rows.append(
            [
                name,
                report.throughput,
                report.relative_to(solution.throughput),
                tree.height,
                str(report.bottleneck),
            ]
        )
    rows.sort(key=lambda row: -row[1])
    print(
        format_table(
            ["heuristic", "throughput", "vs optimum", "tree height", "bottleneck node"],
            rows,
        )
    )

    # Show the best tree.
    best = rows[0][0]
    tree = build_broadcast_tree(platform, source, heuristic=best)
    print(f"\nbest single tree ({best}):")
    print(tree.describe())


if __name__ == "__main__":
    main()
