#!/usr/bin/env python3
"""How much does an MPI-style binomial broadcast leave on the table?

The classical ``MPI_Bcast`` implementation builds a binomial tree over
processor ranks, ignoring both the topology and the heterogeneity of the
platform.  This example quantifies the cost of that choice on Tiers-like
hierarchical platforms (the "realistic" platforms of the paper's Table 3),
for three strategies:

* **STA** — atomic broadcast of the whole message along the tree,
* **STP** — pipelined broadcast of the message cut into slices (the paper's
  focus), and
* the related-work STA baselines (Fastest Node First / Fastest Edge First)
  for reference.

The pipelined strategies are declarative jobs solved through one session
(one LP, shared platform); the STA baselines build their trees directly —
they live outside the steady-state machinery the facade models — but are
measured on the same session-owned platform.

Run with ``python examples/mpi_binomial_comparison.py``.
"""

from __future__ import annotations

from repro import Job, PlatformRecipe, Session, pipelined_makespan, tree_throughput
from repro.sta import FastestEdgeFirst, FastestNodeFirst, atomic_makespan
from repro.utils.ascii_plot import format_table

MESSAGE_SIZE = 100.0  # in "slices": the pipelined strategies cut it into 100 slices
NUM_SLICES = int(MESSAGE_SIZE)

PIPELINED = {
    "binomial (MPI default)": "binomial",
    "grow-tree (paper)": "grow-tree",
    "prune-degree (paper)": "prune-degree",
    "grow-tree + local search": "grow-tree+local-search",
}


def main() -> None:
    recipe = PlatformRecipe.of("tiers", size=30, seed=3)
    session = Session()

    jobs = {
        label: Job.broadcast(recipe, source=0, heuristic=name, num_slices=NUM_SLICES)
        for label, name in PIPELINED.items()
    }
    results = dict(zip(jobs, session.solve_many(list(jobs.values()))))

    platform = next(iter(results.values())).platform
    optimum = next(iter(results.values())).lp_bound
    print(f"platform: {platform} (Tiers-like, 30 nodes)\n")
    print(f"steady-state optimum (multiple trees): {optimum:.3f} slices/time-unit\n")

    # Pipelined (STP) strategies through the facade, plus the atomic cost of
    # broadcasting the whole message along the same trees.
    trees = {label: result.tree for label, result in results.items()}
    # Related-work STA baselines: single trees optimised for one atomic
    # broadcast, measured on the session-shared platform.
    trees["fastest node first (STA)"] = FastestNodeFirst().build(platform, 0)
    trees["fastest edge first (STA)"] = FastestEdgeFirst().build(platform, 0)

    rows = []
    for label, tree in trees.items():
        if label in results:
            stp_ratio = results[label].relative_performance
            pipelined = results[label].makespan
        else:
            stp_ratio = tree_throughput(tree).throughput / optimum
            pipelined = pipelined_makespan(tree, NUM_SLICES).makespan
        atomic = atomic_makespan(tree, MESSAGE_SIZE)
        rows.append([label, stp_ratio, pipelined, atomic, atomic / pipelined])
    print(
        format_table(
            [
                "tree",
                "STP throughput vs optimum",
                "pipelined makespan",
                "atomic makespan",
                "pipelining speed-up",
            ],
            rows,
        )
    )

    binomial_ratio = rows[0][1]
    best_ratio = max(row[1] for row in rows)
    print(
        f"\nOn this platform the MPI-style binomial tree achieves "
        f"{binomial_ratio:.0%} of the optimal throughput, versus "
        f"{best_ratio:.0%} for the best topology-aware single tree — the gap "
        "the paper's heuristics close by reading the platform description."
    )


if __name__ == "__main__":
    main()
