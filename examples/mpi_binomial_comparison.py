#!/usr/bin/env python3
"""How much does an MPI-style binomial broadcast leave on the table?

The classical ``MPI_Bcast`` implementation builds a binomial tree over
processor ranks, ignoring both the topology and the heterogeneity of the
platform.  This example quantifies the cost of that choice on Tiers-like
hierarchical platforms (the "realistic" platforms of the paper's Table 3),
for three strategies:

* **STA** — atomic broadcast of the whole message along the tree,
* **STP** — pipelined broadcast of the message cut into slices (the paper's
  focus), and
* the related-work STA baselines (Fastest Node First / Fastest Edge First)
  for reference.

Run with ``python examples/mpi_binomial_comparison.py``.
"""

from __future__ import annotations

from repro import (
    build_broadcast_tree,
    generate_tiers_platform,
    improve_tree,
    pipelined_makespan,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.sta import FastestEdgeFirst, FastestNodeFirst, atomic_makespan
from repro.utils.ascii_plot import format_table

MESSAGE_SIZE = 100.0  # in "slices": the pipelined strategies cut it into 100 slices


def main() -> None:
    platform = generate_tiers_platform(30, seed=3)
    source = 0
    print(f"platform: {platform} (Tiers-like, 30 nodes)\n")

    optimum = solve_steady_state_lp(platform, source).throughput
    print(f"steady-state optimum (multiple trees): {optimum:.3f} slices/time-unit\n")

    trees = {
        "binomial (MPI default)": build_broadcast_tree(platform, source, "binomial"),
        "grow-tree (paper)": build_broadcast_tree(platform, source, "grow-tree"),
        "prune-degree (paper)": build_broadcast_tree(platform, source, "prune-degree"),
        "grow-tree + local search": improve_tree(
            build_broadcast_tree(platform, source, "grow-tree")
        ),
        "fastest node first (STA)": FastestNodeFirst().build(platform, source),
        "fastest edge first (STA)": FastestEdgeFirst().build(platform, source),
    }

    rows = []
    for name, tree in trees.items():
        stp = tree_throughput(tree)
        pipelined = pipelined_makespan(tree, int(MESSAGE_SIZE))
        atomic = atomic_makespan(tree, MESSAGE_SIZE)
        rows.append(
            [
                name,
                stp.throughput / optimum,
                pipelined.makespan,
                atomic,
                atomic / pipelined.makespan,
            ]
        )
    print(
        format_table(
            [
                "tree",
                "STP throughput vs optimum",
                "pipelined makespan",
                "atomic makespan",
                "pipelining speed-up",
            ],
            rows,
        )
    )

    binomial_ratio = rows[0][1]
    best_ratio = max(row[1] for row in rows)
    print(
        f"\nOn this platform the MPI-style binomial tree achieves "
        f"{binomial_ratio:.0%} of the optimal throughput, versus "
        f"{best_ratio:.0%} for the best topology-aware single tree — the gap "
        "the paper's heuristics close by reading the platform description."
    )


if __name__ == "__main__":
    main()
