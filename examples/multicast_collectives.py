#!/usr/bin/env python3
"""Collective operations: multicast, scatter, reduce and gather on one platform.

The paper's machinery is broadcast-only; the ``repro.collectives`` subsystem
generalises it and the ``repro.api`` facade makes every kind one declarative
job.  This example runs every collective kind end to end on the same
20-node platform:

1. describe the operation as a :class:`repro.Job` (kind, root, target set),
2. batch-solve the jobs through one :class:`repro.Session` — each job's
   spec-parameterised steady-state LP (the multi-tree optimum) is solved
   once and cached,
3. read the lazy :class:`repro.Result` views: the Steiner tree built by the
   spec-aware grow-tree heuristic (reduce/gather build on the reversed
   platform automatically), the closed-form throughput and the pipelined /
   distinct-message simulation cross-check.

Run with ``python examples/multicast_collectives.py``.
"""

from __future__ import annotations

from repro import Job, PlatformRecipe, Session
from repro.utils.ascii_plot import format_table


def main() -> None:
    recipe = PlatformRecipe.of("random", num_nodes=20, density=0.15, seed=7)
    source = 0
    targets = (1, 3, 5, 9, 13)

    kinds = [
        ("broadcast", None),
        ("multicast", targets),
        ("scatter", targets),
        ("reduce", None),
        ("gather", targets),
    ]
    jobs = [
        Job.of_collective(
            recipe, kind, source=source, targets=kind_targets,
            num_slices=80, simulate=True,
        )
        for kind, kind_targets in kinds
    ]

    session = Session()
    results = session.solve_many(jobs)
    print(f"platform: {results[0].platform}")
    print(f"targets for the partial collectives: {list(targets)}\n")

    rows = [
        [
            result.job.collective.kind.value,
            len(result.tree.nodes),
            result.lp_bound,
            result.throughput,
            result.simulated_throughput,
            result.relative_performance,
        ]
        for result in results
    ]
    print(
        format_table(
            ["collective", "covered", "LP optimum", "tree TP", "simulated TP", "ratio"],
            rows,
            float_format="{:.4f}",
        )
    )
    print(
        "\nmulticast beats broadcast (fewer commodities), scatter pays the\n"
        "no-nesting sum, and reduce mirrors broadcast on the reversed platform."
    )


if __name__ == "__main__":
    main()
