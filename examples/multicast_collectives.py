#!/usr/bin/env python3
"""Collective operations: multicast, scatter, reduce and gather on one platform.

The paper's machinery is broadcast-only; the ``repro.collectives`` subsystem
generalises it.  This example runs every collective kind end to end on the
same 20-node platform:

1. describe the operation with a :class:`~repro.collectives.CollectiveSpec`,
2. solve the spec-parameterised steady-state LP (the multi-tree optimum),
3. build a single Steiner tree with the spec-aware grow-tree heuristic
   (reduce/gather build on the reversed platform automatically),
4. cross-check the closed-form throughput against the pipelined /
   distinct-message simulation.

Run with ``python examples/multicast_collectives.py``.
"""

from __future__ import annotations

from repro import (
    CollectiveSpec,
    build_collective_tree,
    collective_throughput,
    generate_random_platform,
    simulate_collective,
    solve_collective_lp,
)
from repro.utils.ascii_plot import format_table


def main() -> None:
    platform = generate_random_platform(num_nodes=20, density=0.15, seed=7)
    source = 0
    targets = [1, 3, 5, 9, 13]
    print(f"platform: {platform}")
    print(f"targets for the partial collectives: {targets}\n")

    specs = [
        CollectiveSpec.broadcast(source),
        CollectiveSpec.multicast(source, targets),
        CollectiveSpec.scatter(source, targets),
        CollectiveSpec.reduce(source),
        CollectiveSpec.gather(source, targets),
    ]

    rows = []
    for spec in specs:
        # The multi-tree optimum of this collective (LP over the rationals);
        # reduce/gather are solved on the reversed platform and mapped back.
        optimum = solve_collective_lp(platform, spec).throughput

        # One Steiner tree covering the targets (plus any relays it needs).
        tree = build_collective_tree(platform, spec)
        analytical = collective_throughput(tree, spec).throughput

        # Ground truth: replay 80 pipelined rounds and measure the
        # steady-state rate (distinct messages for scatter/gather).
        result = simulate_collective(tree, spec, num_slices=80, record_trace=False)

        rows.append(
            [
                spec.kind.value,
                len(tree.nodes),
                optimum,
                analytical,
                result.measured_throughput,
                analytical / optimum,
            ]
        )

    print(
        format_table(
            ["collective", "covered", "LP optimum", "tree TP", "simulated TP", "ratio"],
            rows,
            float_format="{:.4f}",
        )
    )
    print(
        "\nmulticast beats broadcast (fewer commodities), scatter pays the\n"
        "no-nesting sum, and reduce mirrors broadcast on the reversed platform."
    )


if __name__ == "__main__":
    main()
