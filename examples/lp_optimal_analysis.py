#!/usr/bin/env python3
"""Inside the steady-state linear program: from LP solution to broadcast tree.

The paper's key practical insight is that the *value* of the optimal
multiple-tree throughput (and the per-edge traffic achieving it) is cheap to
compute, even though extracting the actual set of trees is complicated.
This example dissects one LP solution:

* the optimal throughput and which constraints are saturated,
* the communication graph (edges weighted by the number of message slices
  they carry per time unit),
* how the two LP-based heuristics (LP-Prune / LP-Grow-Tree) turn that
  communication graph into a single tree, and how close they land.

Run with ``python examples/lp_optimal_analysis.py``.
"""

from __future__ import annotations

from repro import (
    LPCommunicationGraphPruning,
    LPGrowTree,
    build_broadcast_tree,
    generate_random_platform,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.utils.ascii_plot import format_table


def main() -> None:
    platform = generate_random_platform(num_nodes=25, density=0.15, seed=11)
    source = 0
    print(f"platform: {platform}\n")

    solution = solve_steady_state_lp(platform, source)
    print(solution.summary())

    # Saturated resources at the optimum.
    print("\nnode occupations at the optimum (1.0 = fully busy):")
    saturated = [
        [str(node), t_in, t_out]
        for node, (t_in, t_out) in solution.objective_per_node.items()
        if max(t_in, t_out) > 0.99
    ]
    print(format_table(["node", "incoming occupation", "outgoing occupation"], saturated))

    print("\nbusiest edges of the communication graph (slices per time unit):")
    print(
        format_table(
            ["edge", "n_uv"],
            [[str(edge), value] for edge, value in solution.busiest_edges(8)],
        )
    )

    # Reuse the LP solution for both LP heuristics (no re-solve).
    rows = []
    for heuristic in (LPCommunicationGraphPruning(), LPGrowTree()):
        tree = heuristic.build(platform, source, lp_solution=solution)
        report = tree_throughput(tree)
        rows.append(
            [heuristic.paper_label, report.throughput, report.relative_to(solution.throughput)]
        )
    # Topology-only reference.
    grow = build_broadcast_tree(platform, source, "grow-tree")
    rows.append(
        ["Grow Tree (no LP)", tree_throughput(grow).throughput,
         tree_throughput(grow).relative_to(solution.throughput)]
    )
    print("\nsingle-tree heuristics built from (or without) the LP solution:")
    print(format_table(["heuristic", "throughput", "vs optimum"], rows))


if __name__ == "__main__":
    main()
