#!/usr/bin/env python3
"""Inside the steady-state linear program: from LP solution to broadcast tree.

The paper's key practical insight is that the *value* of the optimal
multiple-tree throughput (and the per-edge traffic achieving it) is cheap to
compute, even though extracting the actual set of trees is complicated.
This example dissects one LP solution through the facade:

* the optimal throughput and which constraints are saturated,
* the communication graph (edges weighted by the number of message slices
  they carry per time unit),
* how the two LP-based heuristics (LP-Prune / LP-Grow-Tree) turn that
  communication graph into a single tree, and how close they land.

The :class:`repro.Session` guarantees the LP is solved exactly once: the
diagnostic views and both LP-guided heuristics reuse the same cached
solution.

Run with ``python examples/lp_optimal_analysis.py``.
"""

from __future__ import annotations

from repro import Job, PlatformRecipe, Session
from repro.utils.ascii_plot import format_table


def main() -> None:
    recipe = PlatformRecipe.of("random", num_nodes=25, density=0.15, seed=11)
    session = Session()

    names = ("lp-prune", "lp-grow-tree", "grow-tree")
    results = dict(
        zip(
            names,
            session.solve_many(
                [Job.broadcast(recipe, source=0, heuristic=name) for name in names]
            ),
        )
    )

    reference = results["lp-prune"]
    print(f"platform: {reference.platform}\n")
    solution = reference.lp_solution  # cached: one solve serves everything below
    print(solution.summary())

    # Saturated resources at the optimum.
    print("\nnode occupations at the optimum (1.0 = fully busy):")
    saturated = [
        [str(node), t_in, t_out]
        for node, (t_in, t_out) in solution.objective_per_node.items()
        if max(t_in, t_out) > 0.99
    ]
    print(format_table(["node", "incoming occupation", "outgoing occupation"], saturated))

    print("\nbusiest edges of the communication graph (slices per time unit):")
    print(
        format_table(
            ["edge", "n_uv"],
            [[str(edge), value] for edge, value in solution.busiest_edges(8)],
        )
    )

    labels = {
        "lp-prune": "LP-Prune",
        "lp-grow-tree": "LP-Grow-Tree",
        "grow-tree": "Grow Tree (no LP)",
    }
    print("\nsingle-tree heuristics built from (or without) the LP solution:")
    print(
        format_table(
            ["heuristic", "throughput", "vs optimum"],
            [
                [labels[name], result.throughput, result.relative_performance]
                for name, result in results.items()
            ],
        )
    )


if __name__ == "__main__":
    main()
