#!/usr/bin/env python3
"""Talk to the long-lived solve service over plain HTTP.

This example exercises the deployment surface end to end:

1. launch ``repro serve`` as a subprocess on an ephemeral port,
2. POST a batch of versioned :class:`repro.Job` payloads to ``/solve``
   and rebuild :class:`repro.Result` objects from the JSON wire format,
3. repeat the batch to show the warm cross-request session caches (the
   LP is not re-solved; ``/statz`` proves it),
4. send a malformed request to show the structured error contract —
   the service answers JSON for *every* input, it never stack-traces,
5. shut the service down with SIGTERM and confirm the graceful drain
   (exit code 0).

Run with ``python examples/service_client.py``.  Only the standard
library is needed on the client side: the wire format is plain JSON.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import Job, PlatformRecipe, Result
from repro.utils.ascii_plot import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]


def launch_service() -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` on an ephemeral port; return (process, base url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    # "repro solve service listening on http://127.0.0.1:PORT"
    base_url = line.rsplit(" ", 1)[-1]
    return process, base_url


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    process, base_url = launch_service()
    try:
        print(f"service up at {base_url}")

        # One batch: every paper one-port heuristic on the same platform.
        recipe = PlatformRecipe.of("random", num_nodes=16, density=0.3, seed=7)
        jobs = [
            Job.broadcast(recipe, source=0, heuristic=name)
            for name in ("grow-tree", "prune-degree", "prune-simple")
        ]
        payload = {"jobs": [job.canonical_payload() for job in jobs], "deadline": 60}

        reply = post(f"{base_url}/solve", payload)
        results = [Result.from_dict(entry) for entry in reply["results"]]
        rows = [
            [r.job.heuristic, r.throughput, r.relative_performance]
            for r in results
        ]
        print(format_table(["heuristic", "throughput", "vs optimum"], rows))

        # The session caches survive between requests: replaying the batch
        # re-solves nothing (the LP miss counter does not move).
        before = get(f"{base_url}/statz")["caches"]["lp_solutions"]["misses"]
        replay = post(f"{base_url}/solve", payload)
        after = get(f"{base_url}/statz")["caches"]["lp_solutions"]["misses"]
        assert replay["results"] == reply["results"], "warm replay must match"
        assert after == before, "warm replay must not re-solve the LP"
        print(f"warm replay: identical results, LP misses still {after}")

        # Garbage in, structured JSON out — never a stack trace.
        try:
            post(f"{base_url}/solve", {"jobs": "not-a-list"})
        except urllib.error.HTTPError as error:
            detail = json.loads(error.read().decode("utf-8"))
            print(
                f"malformed request -> HTTP {error.code} "
                f"{detail['error']['kind']}: {detail['error']['message']}"
            )

        stats = get(f"{base_url}/statz")
        print(
            f"served {stats['counters']['requests_total']} requests, "
            f"{stats['counters']['jobs_solved']} jobs solved, "
            f"cache {stats['caches']['total']['bytes']} bytes"
        )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
        print(f"SIGTERM -> drained and exited with code {code}")
        if code != 0:
            raise SystemExit(code)


if __name__ == "__main__":
    main()
