#!/usr/bin/env python3
"""Adaptive re-scheduling on a platform whose bandwidths drift over time.

The paper's steady-state trees are optimal for a *fixed* platform; real
grids drift.  This example generates a seeded bandwidth trace (smooth
log-AR(1) drift plus transient congestion episodes), replays it window by
window, and compares three policies:

* ``static``   -- plan one tree up front and never touch it;
* ``oracle``   -- re-plan every epoch, paying a re-planning charge each time;
* ``adaptive`` -- monitor the achieved-vs-LP-bound ratio and re-plan only
  when it has drifted past a threshold.

Everything is deterministic: the same recipe and trace seed reproduce the
same event stream, the same decision timeline, and the same sparklines.

Run with ``python examples/dynamic_adaptive.py``.
"""

from __future__ import annotations

from repro import DynamicJob, PlatformRecipe, Session, TraceSpec


def main() -> None:
    recipe = PlatformRecipe.of("random", num_nodes=14, density=0.3, seed=11)
    trace = TraceSpec(
        seed=5,
        horizon=10,
        drift=0.25,       # per-window log-drift scale of each link
        drift_rho=0.7,    # AR(1) persistence: drift is smooth, not white noise
        congestion_rate=0.2,  # expected congestion episodes per window
    )
    job = DynamicJob(recipe, trace=trace, source=0, threshold=0.15, replan_cost=0.1)

    session = Session()
    result = session.solve_dynamic(job)
    print(result.summary())
    print()

    adaptive = result.timeline("adaptive")
    replan_epochs = [d.epoch for d in adaptive.decisions if d.replanned]
    print(
        f"adaptive re-planned {adaptive.replans}x (epochs {replan_epochs}) "
        f"vs {result.replans('oracle')}x for the per-epoch oracle"
    )
    print(
        f"mean achieved/bound: adaptive {adaptive.mean_ratio:.3f} "
        f"vs static {result.mean_ratio('static'):.3f}"
    )


if __name__ == "__main__":
    main()
