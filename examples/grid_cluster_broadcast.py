#!/usr/bin/env python3
"""Broadcasting input data across a federation of clusters.

Scenario (the motivation of the paper's introduction): a parallel
application runs on three workstation clusters connected by slow wide-area
links; before the computation starts, the master node has to broadcast a
large input file (say 1 GB, split into 10 MB slices) to every worker.

The example shows why topology-aware trees matter in this setting: the
binomial tree used by index-based MPI broadcasts keeps re-crossing the slow
backbone, while the paper's heuristics cross each wide-area link exactly
once and fan out locally.  The whole comparison is one batch of declarative
jobs on a ``cluster`` platform recipe, solved through one session.

Run with ``python examples/grid_cluster_broadcast.py``.
"""

from __future__ import annotations

from repro import Job, PlatformRecipe, Session
from repro.utils.ascii_plot import format_table

NUM_SLICES = 100  # 1 GB broadcast as 100 slices of 10 MB


def backbone_crossings(tree, platform) -> int:
    """How many logical tree edges cross between two clusters."""
    return sum(
        1
        for u, v in tree.logical_edges
        if platform.node(u).cluster != platform.node(v).cluster
    )


def main() -> None:
    recipe = PlatformRecipe.of(
        "cluster",
        num_clusters=3,
        cluster_size=8,
        intra_time_mean=0.1,   # 10 MB over a ~100 MB/s LAN: 0.1 s per slice
        intra_deviation=0.02,
        inter_time_mean=1.0,   # 10 MB over a ~10 MB/s WAN link: 1 s per slice
        inter_deviation=0.2,
        seed=7,
    )
    session = Session()

    # source 0: the gateway of cluster 0 holds the input data.
    jobs = [
        Job.broadcast(recipe, source=0, heuristic=name, num_slices=NUM_SLICES)
        for name in ("binomial", "prune-degree", "grow-tree", "lp-grow-tree")
    ]
    results = session.solve_many(jobs)
    platform = results[0].platform
    print(f"platform: {platform} (3 clusters x 8 nodes, slow backbone)\n")
    print(
        f"steady-state optimum (multiple trees): {results[0].lp_bound:.3f} slices/s\n"
    )

    rows = [
        [
            result.job.heuristic,
            result.throughput,
            result.relative_performance,
            result.makespan,
            backbone_crossings(result.tree, platform),
        ]
        for result in results
    ]
    print(
        format_table(
            [
                "heuristic",
                "slices/s",
                "vs optimum",
                f"time for {NUM_SLICES} slices (s)",
                "backbone crossings",
            ],
            rows,
        )
    )

    print(
        "\nThe topology-aware trees cross the wide-area backbone exactly twice "
        "(once per remote cluster) and keep the slow links out of the critical "
        "pipeline; the binomial tree's extra crossings multiply the period by "
        "the number of redundant wide-area transfers."
    )


if __name__ == "__main__":
    main()
