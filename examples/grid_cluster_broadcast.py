#!/usr/bin/env python3
"""Broadcasting input data across a federation of clusters.

Scenario (the motivation of the paper's introduction): a parallel
application runs on three workstation clusters connected by slow wide-area
links; before the computation starts, the master node has to broadcast a
large input file (say 1 GB, split into 10 MB slices) to every worker.

The example shows why topology-aware trees matter in this setting: the
binomial tree used by index-based MPI broadcasts keeps re-crossing the slow
backbone, while the paper's heuristics cross each wide-area link exactly
once and fan out locally.

Run with ``python examples/grid_cluster_broadcast.py``.
"""

from __future__ import annotations

from repro import (
    build_broadcast_tree,
    generate_cluster_platform,
    pipelined_makespan,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.utils.ascii_plot import format_table

NUM_SLICES = 100  # 1 GB broadcast as 100 slices of 10 MB


def backbone_crossings(tree, platform) -> int:
    """How many logical tree edges cross between two clusters."""
    return sum(
        1
        for u, v in tree.logical_edges
        if platform.node(u).cluster != platform.node(v).cluster
    )


def main() -> None:
    platform = generate_cluster_platform(
        num_clusters=3,
        cluster_size=8,
        intra_time_mean=0.1,   # 10 MB over a ~100 MB/s LAN: 0.1 s per slice
        intra_deviation=0.02,
        inter_time_mean=1.0,   # 10 MB over a ~10 MB/s WAN link: 1 s per slice
        inter_deviation=0.2,
        seed=7,
    )
    source = 0  # gateway of cluster 0 holds the input data
    print(f"platform: {platform} (3 clusters x 8 nodes, slow backbone)\n")

    solution = solve_steady_state_lp(platform, source)
    print(f"steady-state optimum (multiple trees): {solution.throughput:.3f} slices/s\n")

    rows = []
    for name in ("binomial", "prune-degree", "grow-tree", "lp-grow-tree"):
        tree = build_broadcast_tree(platform, source, heuristic=name)
        report = tree_throughput(tree)
        makespan = pipelined_makespan(tree, NUM_SLICES)
        rows.append(
            [
                name,
                report.throughput,
                report.relative_to(solution.throughput),
                makespan.makespan,
                backbone_crossings(tree, platform),
            ]
        )
    print(
        format_table(
            [
                "heuristic",
                "slices/s",
                "vs optimum",
                f"time for {NUM_SLICES} slices (s)",
                "backbone crossings",
            ],
            rows,
        )
    )

    print(
        "\nThe topology-aware trees cross the wide-area backbone exactly twice "
        "(once per remote cluster) and keep the slow links out of the critical "
        "pipeline; the binomial tree's extra crossings multiply the period by "
        "the number of redundant wide-area transfers."
    )


if __name__ == "__main__":
    main()
