#!/usr/bin/env python3
"""Validating the steady-state analysis with the discrete-event simulator.

Every throughput number in this library comes from a closed-form argument
(the inverse of the busiest node's period).  This example checks that claim
the hard way: each strategy is a :class:`repro.Job` with ``simulate=True``,
so its :class:`repro.Result` carries both the analytical throughput and the
measured steady-state rate of an explicit slice-by-slice simulation with
one-port / multi-port resource occupation.  It also prints a small Gantt
chart of the schedule on a toy platform so the pipelining is visible (the
trace-recording simulator is invoked directly for that: facade simulations
run traceless).

Run with ``python examples/simulation_validation.py``.
"""

from __future__ import annotations

from repro import Job, PlatformBuilder, PlatformRecipe, Session
from repro.simulation import render_gantt, simulate_broadcast
from repro.utils.ascii_plot import format_table


def toy_gantt(session: Session) -> None:
    """A 5-node toy platform: show the pipelined schedule explicitly."""
    platform = (
        PlatformBuilder(name="toy")
        .nodes(0, 1, 2, 3, 4)
        .link(0, 1, 1.0, bidirectional=True)
        .link(1, 2, 2.0, bidirectional=True)
        .link(1, 3, 1.0, bidirectional=True)
        .link(3, 4, 1.0, bidirectional=True)
        .build()
    )
    tree = session.solve(Job.broadcast(platform, source=0, heuristic="grow-tree")).tree
    print(tree.describe())
    result = simulate_broadcast(tree, num_slices=5)  # record_trace for the Gantt
    print("\nschedule of the first 5 slices (digits are slice indices):")
    print(render_gantt(result.trace))
    print()


def main() -> None:
    session = Session()
    toy_gantt(session)

    recipe = PlatformRecipe.of("random", num_nodes=22, density=0.15, seed=13)
    strategies = [
        ("grow-tree", "one-port"),
        ("prune-degree", "one-port"),
        ("binomial", "one-port"),
        ("multiport-grow-tree", "multi-port"),
    ]
    results = session.solve_many(
        [
            Job.broadcast(
                recipe, source=0, heuristic=name, model=model,
                num_slices=80, simulate=True,
            )
            for name, model in strategies
        ]
    )
    rows = [
        [
            job_label(result),
            result.throughput,
            result.simulated_throughput,
            result.simulation_error,
            result.simulation.makespan,
        ]
        for result in results
    ]
    print(
        format_table(
            [
                "tree",
                "analytical throughput",
                "simulated throughput",
                "relative error",
                "makespan (80 slices)",
            ],
            rows,
            float_format="{:.4f}",
        )
    )
    print(
        "\nDirect trees match the closed form to numerical precision; the routed "
        "binomial tree is the only case where the simple FIFO schedule stays "
        "below the steady-state bound (relay contention)."
    )


def job_label(result) -> str:
    job = result.job
    return job.heuristic + ("" if job.model == "one-port" else " [multi-port]")


if __name__ == "__main__":
    main()
