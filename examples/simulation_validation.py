#!/usr/bin/env python3
"""Validating the steady-state analysis with the discrete-event simulator.

Every throughput number in this library comes from a closed-form argument
(the inverse of the busiest node's period).  This example checks that claim
the hard way: it simulates the pipelined broadcast slice by slice, with
explicit one-port / multi-port resource occupation, and compares the
measured steady-state rate with the analytical prediction.  It also prints a
small Gantt chart of the schedule on a toy platform so the pipelining is
visible.

Run with ``python examples/simulation_validation.py``.
"""

from __future__ import annotations

from repro import (
    MultiPortModel,
    PlatformBuilder,
    build_broadcast_tree,
    generate_random_platform,
    tree_throughput,
)
from repro.simulation import render_gantt, simulate_broadcast
from repro.utils.ascii_plot import format_table


def toy_gantt() -> None:
    """A 5-node toy platform: show the pipelined schedule explicitly."""
    platform = (
        PlatformBuilder(name="toy")
        .nodes(0, 1, 2, 3, 4)
        .link(0, 1, 1.0, bidirectional=True)
        .link(1, 2, 2.0, bidirectional=True)
        .link(1, 3, 1.0, bidirectional=True)
        .link(3, 4, 1.0, bidirectional=True)
        .build()
    )
    tree = build_broadcast_tree(platform, 0, "grow-tree")
    print(tree.describe())
    result = simulate_broadcast(tree, num_slices=5)
    print("\nschedule of the first 5 slices (digits are slice indices):")
    print(render_gantt(result.trace))
    print()


def main() -> None:
    toy_gantt()

    platform = generate_random_platform(num_nodes=22, density=0.15, seed=13)
    rows = []
    for name, model in (
        ("grow-tree", None),
        ("prune-degree", None),
        ("binomial", None),
        ("multiport-grow-tree", MultiPortModel()),
    ):
        tree = build_broadcast_tree(platform, 0, name, model=model, strict_model=False)
        analytical = tree_throughput(tree, model).throughput
        result = simulate_broadcast(tree, num_slices=80, model=model, record_trace=False)
        rows.append(
            [
                name + ("" if model is None else " [multi-port]"),
                analytical,
                result.measured_throughput,
                result.relative_error(),
                result.makespan,
            ]
        )
    print(
        format_table(
            [
                "tree",
                "analytical throughput",
                "simulated throughput",
                "relative error",
                "makespan (80 slices)",
            ],
            rows,
            float_format="{:.4f}",
        )
    )
    print(
        "\nDirect trees match the closed form to numerical precision; the routed "
        "binomial tree is the only case where the simple FIFO schedule stays "
        "below the steady-state bound (relay contention)."
    )


if __name__ == "__main__":
    main()
